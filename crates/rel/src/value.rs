//! Runtime values, comparisons, and byte encodings.
//!
//! Two encodings exist, for two different jobs:
//!
//! * [`Value::encode_key`] — an **order-preserving** encoding used in index
//!   keys: comparing encoded byte strings with `memcmp` gives the same
//!   result as comparing the values. Nulls sort first; type tags keep
//!   heterogeneous composites unambiguous.
//! * Row serialization ([`encode_row`] / [`decode_row`]) — a compact,
//!   self-describing format used for heap records.

use crate::error::{RelError, RelResult};
use crate::types::{format_date, parse_date, DataType};
use std::cmp::Ordering;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// The null value (unknown).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// The value's type, or `None` for null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// Whether the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value is acceptable for a column of type `ty`
    /// (ints silently widen to float columns).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Date(_), DataType::Date)
        )
    }

    /// Coerce to the column type (int→float widening; text that parses as
    /// `YYYY-MM-DD` narrows to a date, which is how date literals written as
    /// strings reach date columns); error otherwise.
    pub fn coerce_to(self, ty: DataType) -> RelResult<Value> {
        match (&self, ty) {
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Text(s), DataType::Date) => {
                parse_date(s)
                    .map(Value::Date)
                    .ok_or_else(|| RelError::TypeMismatch {
                        expected: "DATE (YYYY-MM-DD)".to_string(),
                        got: format!("\"{s}\""),
                    })
            }
            _ if self.conforms_to(ty) => Ok(self),
            _ => Err(RelError::TypeMismatch {
                expected: ty.keyword().to_string(),
                got: self.type_name().to_string(),
            }),
        }
    }

    /// Human-readable type name (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Float(_) => "FLOAT",
            Value::Text(_) => "TEXT",
            Value::Bool(_) => "BOOL",
            Value::Date(_) => "DATE",
        }
    }

    /// Numeric view (ints and floats), for arithmetic.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL-style comparison: `None` when either side is null, otherwise the
    /// ordering. Ints and floats compare numerically; other cross-type
    /// comparisons order by type tag (so sorting heterogeneous data is
    /// total) but `compare` is normally used post-typecheck.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order over all values (nulls first, then by type tag, then by
    /// value). Used by `SORT BY` so that sorting never fails.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Heterogeneous: order by tag so the order is total.
            _ => self.tag().cmp(&other.tag()),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Text(_) => 3,
            Value::Bool(_) => 4,
            Value::Date(_) => 5,
        }
    }

    /// Append the order-preserving key encoding of this value to `out`.
    ///
    /// Layout: 1 tag byte, then a per-type payload whose lexicographic
    /// order matches value order. Ints and floats share numeric tags so
    /// `1` and `1.0` encode comparably only within their own type — key
    /// columns have a single declared type, so this never arises in
    /// practice. Text is escaped (`0x00 → 0x00 0xFF`) and terminated with
    /// `0x00 0x00` so that prefixes sort before extensions.
    pub fn encode_key(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0x00),
            Value::Int(i) => {
                out.push(0x10);
                // Flip the sign bit so negative < positive in memcmp order.
                out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
            }
            Value::Float(f) => {
                out.push(0x10); // same family tag as Int: numeric
                out.extend_from_slice(&encode_f64(*f).to_be_bytes());
            }
            Value::Text(s) => {
                out.push(0x20);
                for &b in s.as_bytes() {
                    if b == 0x00 {
                        out.extend_from_slice(&[0x00, 0xFF]);
                    } else {
                        out.push(b);
                    }
                }
                out.extend_from_slice(&[0x00, 0x00]);
            }
            Value::Bool(b) => {
                out.push(0x30);
                out.push(*b as u8);
            }
            Value::Date(d) => {
                out.push(0x40);
                out.extend_from_slice(&((*d as u32) ^ (1 << 31)).to_be_bytes());
            }
        }
    }

    /// Encode a composite key from several values.
    pub fn encode_composite(values: &[Value]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * 9);
        for v in values {
            v.encode_key(&mut out);
        }
        out
    }

    /// Parse a string as a value of type `ty`, as a form field would.
    /// Empty input is null.
    pub fn parse_as(input: &str, ty: DataType) -> RelResult<Value> {
        let s = input.trim();
        if s.is_empty() {
            return Ok(Value::Null);
        }
        let err = || RelError::TypeMismatch {
            expected: ty.keyword().to_string(),
            got: format!("\"{s}\""),
        };
        match ty {
            DataType::Int => s.parse::<i64>().map(Value::Int).map_err(|_| err()),
            DataType::Float => s.parse::<f64>().map(Value::Float).map_err(|_| err()),
            DataType::Text => Ok(Value::Text(s.to_string())),
            DataType::Bool => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "y" | "1" => Ok(Value::Bool(true)),
                "false" | "f" | "no" | "n" | "0" => Ok(Value::Bool(false)),
                _ => Err(err()),
            },
            DataType::Date => parse_date(s).map(Value::Date).ok_or_else(err),
        }
    }
}

/// IEEE-754 total-order trick: flip all bits of negatives, flip only the
/// sign bit of non-negatives; the resulting u64s sort like the floats.
fn encode_f64(f: f64) -> u64 {
    let bits = f.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Date(d) => f.write_str(&format_date(*d)),
        }
    }
}

// ---------------------------------------------------------------------------
// Row serialization
// ---------------------------------------------------------------------------

/// Serialize a row of values into a compact self-describing byte string.
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8 + 2);
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        match v {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(4);
                out.push(*b as u8);
            }
            Value::Date(d) => {
                out.push(5);
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
    }
    out
}

/// Decode only the columns listed in `wanted` (sorted, deduplicated) from an
/// encoded row, calling `emit(col, value)` for each. Unwanted columns are
/// skipped without decoding — text columns in particular are stepped over by
/// length, with no UTF-8 validation and no `String` allocation. The walk
/// stops as soon as the last wanted column has been emitted, so only the
/// prefix actually read is validated; full-row validation (including the
/// trailing-bytes check) is [`decode_row`]'s job.
///
/// This is the late-materialization primitive of the vectorized executor: a
/// selective scan decodes just the predicate columns up front and the rest
/// only for rows that survive the filter.
pub fn decode_row_cols(
    bytes: &[u8],
    wanted: &[usize],
    mut emit: impl FnMut(usize, Value),
) -> RelResult<()> {
    let corrupt = || RelError::Storage(wow_storage::StorageError::Corrupt("bad row encoding"));
    if bytes.len() < 2 {
        return Err(corrupt());
    }
    let n = u16::from_le_bytes(bytes[..2].try_into().unwrap()) as usize;
    let mut pos = 2usize;
    let mut next = 0usize;
    for col in 0..n {
        // Once every wanted column is emitted, skip the tail entirely —
        // the full trailing-bytes validation is [`decode_row`]'s job.
        if next == wanted.len() {
            return Ok(());
        }
        let want = wanted.get(next) == Some(&col);
        let tag = *bytes.get(pos).ok_or_else(corrupt)?;
        pos += 1;
        match tag {
            0 => {
                if want {
                    emit(col, Value::Null);
                }
            }
            1 => {
                let s = bytes.get(pos..pos + 8).ok_or_else(corrupt)?;
                if want {
                    emit(col, Value::Int(i64::from_le_bytes(s.try_into().unwrap())));
                }
                pos += 8;
            }
            2 => {
                let s = bytes.get(pos..pos + 8).ok_or_else(corrupt)?;
                if want {
                    emit(
                        col,
                        Value::Float(f64::from_bits(u64::from_le_bytes(s.try_into().unwrap()))),
                    );
                }
                pos += 8;
            }
            3 => {
                let s = bytes.get(pos..pos + 4).ok_or_else(corrupt)?;
                let len = u32::from_le_bytes(s.try_into().unwrap()) as usize;
                pos += 4;
                let s = bytes.get(pos..pos + len).ok_or_else(corrupt)?;
                if want {
                    emit(
                        col,
                        Value::Text(String::from_utf8(s.to_vec()).map_err(|_| corrupt())?),
                    );
                }
                pos += len;
            }
            4 => {
                let b = *bytes.get(pos).ok_or_else(corrupt)?;
                if want {
                    emit(col, Value::Bool(b != 0));
                }
                pos += 1;
            }
            5 => {
                let s = bytes.get(pos..pos + 4).ok_or_else(corrupt)?;
                if want {
                    emit(col, Value::Date(i32::from_le_bytes(s.try_into().unwrap())));
                }
                pos += 4;
            }
            _ => return Err(corrupt()),
        }
        if want {
            next += 1;
        }
    }
    if pos != bytes.len() {
        return Err(corrupt());
    }
    Ok(())
}

/// Inverse of [`encode_row`].
pub fn decode_row(bytes: &[u8]) -> RelResult<Vec<Value>> {
    let corrupt = || RelError::Storage(wow_storage::StorageError::Corrupt("bad row encoding"));
    if bytes.len() < 2 {
        return Err(corrupt());
    }
    let n = u16::from_le_bytes(bytes[..2].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 2usize;
    for _ in 0..n {
        let tag = *bytes.get(pos).ok_or_else(corrupt)?;
        pos += 1;
        let v = match tag {
            0 => Value::Null,
            1 => {
                let s = bytes.get(pos..pos + 8).ok_or_else(corrupt)?;
                pos += 8;
                Value::Int(i64::from_le_bytes(s.try_into().unwrap()))
            }
            2 => {
                let s = bytes.get(pos..pos + 8).ok_or_else(corrupt)?;
                pos += 8;
                Value::Float(f64::from_bits(u64::from_le_bytes(s.try_into().unwrap())))
            }
            3 => {
                let s = bytes.get(pos..pos + 4).ok_or_else(corrupt)?;
                let len = u32::from_le_bytes(s.try_into().unwrap()) as usize;
                pos += 4;
                let s = bytes.get(pos..pos + len).ok_or_else(corrupt)?;
                pos += len;
                Value::Text(String::from_utf8(s.to_vec()).map_err(|_| corrupt())?)
            }
            4 => {
                let b = *bytes.get(pos).ok_or_else(corrupt)?;
                pos += 1;
                Value::Bool(b != 0)
            }
            5 => {
                let s = bytes.get(pos..pos + 4).ok_or_else(corrupt)?;
                pos += 4;
                Value::Date(i32::from_le_bytes(s.try_into().unwrap()))
            }
            _ => return Err(corrupt()),
        };
        out.push(v);
    }
    if pos != bytes.len() {
        return Err(corrupt());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Int(-5),
            Value::Int(0),
            Value::Int(42),
            Value::Float(-1.5),
            Value::Float(std::f64::consts::PI),
            Value::text(""),
            Value::text("hello"),
            Value::Bool(false),
            Value::Bool(true),
            Value::Date(4890),
        ]
    }

    #[test]
    fn row_round_trip() {
        let vals = sample_values();
        let bytes = encode_row(&vals);
        assert_eq!(decode_row(&bytes).unwrap(), vals);
    }

    #[test]
    fn decode_row_cols_matches_full_decode_per_column() {
        let vals = sample_values();
        let bytes = encode_row(&vals);
        // Every single-column subset, skipping across every type.
        for want in 0..vals.len() {
            let mut got = Vec::new();
            decode_row_cols(&bytes, &[want], |c, v| got.push((c, v))).unwrap();
            assert_eq!(got, vec![(want, vals[want].clone())]);
        }
        // A sparse multi-column subset, in order.
        let mut got = Vec::new();
        decode_row_cols(&bytes, &[1, 6, 10], |c, v| got.push((c, v))).unwrap();
        assert_eq!(
            got,
            vec![
                (1, Value::Int(-5)),
                (6, Value::text("")),
                (10, Value::Date(4890)),
            ]
        );
        // Asking for every column reproduces decode_row.
        let all: Vec<usize> = (0..vals.len()).collect();
        let mut got = Vec::new();
        decode_row_cols(&bytes, &all, |_, v| got.push(v)).unwrap();
        assert_eq!(got, vals);
    }

    #[test]
    fn decode_row_cols_validates_the_prefix_it_reads() {
        let bytes = encode_row(&sample_values());
        // The walk stops after the last wanted column: damage past it is
        // not this function's job to catch (decode_row validates fully).
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(decode_row_cols(&bad, &[], |_, _| {}).is_ok());
        assert!(decode_row_cols(&bad[..bad.len() - 7], &[0], |_, _| {}).is_ok());
        // But truncation inside or before a wanted column is caught:
        // col 1 is an Int whose 8 payload bytes are cut off here.
        assert!(decode_row_cols(&bytes[..4], &[1], |_, _| {}).is_err());
        // A wanted column past the end forces a full (validating) walk.
        assert!(decode_row_cols(&bad, &[42], |_, _| {}).is_err());
        // Columns past the end of the row are simply never emitted.
        let mut got = Vec::new();
        decode_row_cols(&bytes, &[42], |c, _| got.push(c)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn empty_row_round_trips() {
        assert_eq!(decode_row(&encode_row(&[])).unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn truncated_row_is_error() {
        let bytes = encode_row(&sample_values());
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert!(decode_row(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is also rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_row(&padded).is_err());
    }

    #[test]
    fn key_encoding_orders_ints() {
        let mut last: Option<Vec<u8>> = None;
        for i in [i64::MIN, -1_000_000, -1, 0, 1, 7, 1_000_000, i64::MAX] {
            let mut k = Vec::new();
            Value::Int(i).encode_key(&mut k);
            if let Some(prev) = &last {
                assert!(prev < &k, "ordering broken at {i}");
            }
            last = Some(k);
        }
    }

    #[test]
    fn key_encoding_orders_floats() {
        let mut last: Option<Vec<u8>> = None;
        for f in [
            f64::NEG_INFINITY,
            -1e100,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            2.5,
            1e100,
            f64::INFINITY,
        ] {
            let mut k = Vec::new();
            Value::Float(f).encode_key(&mut k);
            if let Some(prev) = &last {
                assert!(prev <= &k, "ordering broken at {f}");
            }
            last = Some(k);
        }
    }

    #[test]
    fn key_encoding_orders_text_with_embedded_nul() {
        let a = Value::text("ab");
        let b = Value::text("ab\0");
        let c = Value::text("ab\0x");
        let d = Value::text("abc");
        let keys: Vec<Vec<u8>> = [a, b, c, d]
            .iter()
            .map(|v| {
                let mut k = Vec::new();
                v.encode_key(&mut k);
                k
            })
            .collect();
        assert!(keys[0] < keys[1]);
        assert!(keys[1] < keys[2]);
        assert!(keys[2] < keys[3]);
    }

    #[test]
    fn null_sorts_before_everything_in_keys() {
        let mut null_key = Vec::new();
        Value::Null.encode_key(&mut null_key);
        for v in sample_values().into_iter().filter(|v| !v.is_null()) {
            let mut k = Vec::new();
            v.encode_key(&mut k);
            assert!(null_key < k, "null must sort before {v:?}");
        }
    }

    #[test]
    fn composite_key_orders_lexicographically() {
        let k1 = Value::encode_composite(&[Value::text("a"), Value::Int(2)]);
        let k2 = Value::encode_composite(&[Value::text("a"), Value::Int(10)]);
        let k3 = Value::encode_composite(&[Value::text("b"), Value::Int(0)]);
        assert!(k1 < k2);
        assert!(k2 < k3);
    }

    #[test]
    fn compare_follows_sql_null_semantics() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn parse_as_all_types() {
        assert_eq!(
            Value::parse_as("42", DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::parse_as("-1.5", DataType::Float).unwrap(),
            Value::Float(-1.5)
        );
        assert_eq!(
            Value::parse_as(" padded ", DataType::Text).unwrap(),
            Value::text("padded")
        );
        assert_eq!(
            Value::parse_as("yes", DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::parse_as("1983-05-23", DataType::Date).unwrap(),
            Value::Date(4890)
        );
        assert_eq!(Value::parse_as("", DataType::Int).unwrap(), Value::Null);
        assert!(Value::parse_as("abc", DataType::Int).is_err());
        assert!(Value::parse_as("maybe", DataType::Bool).is_err());
        assert!(Value::parse_as("1983/05/23", DataType::Date).is_err());
    }

    #[test]
    fn coercion_widens_int_to_float() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert!(Value::text("x").coerce_to(DataType::Int).is_err());
        assert_eq!(Value::Null.coerce_to(DataType::Int).unwrap(), Value::Null);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Date(4890).to_string(), "1983-05-23");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            "[a-zA-Z0-9 ]{0,20}".prop_map(Value::text),
            any::<bool>().prop_map(Value::Bool),
            (-1_000_000i32..1_000_000).prop_map(Value::Date),
        ]
    }

    proptest! {
        #[test]
        fn row_encoding_round_trips(vals in proptest::collection::vec(value_strategy(), 0..12)) {
            let bytes = encode_row(&vals);
            prop_assert_eq!(decode_row(&bytes).unwrap(), vals);
        }

        #[test]
        fn key_encoding_preserves_order_within_type(
            a in any::<i64>(), b in any::<i64>(),
            s in "[a-z]{0,12}", t in "[a-z]{0,12}",
        ) {
            let (mut ka, mut kb) = (Vec::new(), Vec::new());
            Value::Int(a).encode_key(&mut ka);
            Value::Int(b).encode_key(&mut kb);
            prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
            let (mut ks, mut kt) = (Vec::new(), Vec::new());
            Value::text(s.clone()).encode_key(&mut ks);
            Value::text(t.clone()).encode_key(&mut kt);
            prop_assert_eq!(s.cmp(&t), ks.cmp(&kt));
        }

        #[test]
        fn total_cmp_is_consistent_with_eq(a in value_strategy(), b in value_strategy()) {
            let ord = a.total_cmp(&b);
            prop_assert_eq!(ord == std::cmp::Ordering::Equal, a == b);
            prop_assert_eq!(ord.reverse(), b.total_cmp(&a));
        }
    }
}
