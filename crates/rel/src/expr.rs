//! Scalar expressions.
//!
//! The parser produces expressions with *named* column references
//! ([`Expr::ColumnRef`]); binding against a schema (see [`Expr::resolve`])
//! rewrites them to positional [`Expr::Column`] references which is what the
//! evaluator requires.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    /// Whether this operator is a comparison.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator is arithmetic.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
        )
    }

    /// The comparison with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> BinOp {
        match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }

    /// Display token.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical `NOT`.
    Not,
    /// Numeric negation.
    Neg,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Resolved column reference (index into the input tuple).
    Column(usize),
    /// Unresolved column reference (name, possibly qualified `e.salary`).
    ColumnRef(String),
    /// A constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Glob-style pattern match (`*` any run, `?` one char), the INGRES
    /// pattern dialect.
    Like {
        /// The text expression being matched.
        expr: Box<Expr>,
        /// The pattern.
        pattern: String,
    },
    /// `IS NULL` test (negate with [`UnOp::Not`]).
    IsNull(Box<Expr>),
}

impl Expr {
    /// Shorthand: equality between a column ref and a literal.
    pub fn col_eq(name: &str, v: Value) -> Expr {
        Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::ColumnRef(name.to_string())),
            right: Box::new(Expr::Literal(v)),
        }
    }

    /// Shorthand: conjunction of two expressions.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::And,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Fold a list of conjuncts back into one expression (`true` if empty).
    pub fn conjunction(mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::Literal(Value::Bool(true)),
            1 => parts.pop().unwrap(),
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().unwrap();
                it.fold(first, Expr::and)
            }
        }
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut out = left.split_conjuncts();
                out.extend(right.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Resolve all [`Expr::ColumnRef`]s against `schema`, producing an
    /// executable expression.
    pub fn resolve(self, schema: &Schema) -> RelResult<Expr> {
        Ok(match self {
            Expr::ColumnRef(name) => Expr::Column(schema.resolve(&name)?),
            Expr::Column(i) => Expr::Column(i),
            Expr::Literal(v) => Expr::Literal(v),
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.resolve(schema)?),
                right: Box::new(right.resolve(schema)?),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(expr.resolve(schema)?),
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.resolve(schema)?),
                pattern,
            },
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.resolve(schema)?)),
        })
    }

    /// Collect the names of all unresolved column references.
    pub fn column_names(&self, out: &mut Vec<String>) {
        match self {
            Expr::ColumnRef(n) => out.push(n.clone()),
            Expr::Binary { left, right, .. } => {
                left.column_names(out);
                right.column_names(out);
            }
            Expr::Unary { expr, .. } => expr.column_names(out),
            Expr::Like { expr, .. } => expr.column_names(out),
            Expr::IsNull(e) => e.column_names(out),
            Expr::Column(_) | Expr::Literal(_) => {}
        }
    }

    /// Collect the indexes of all resolved column references.
    pub fn column_indexes(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Binary { left, right, .. } => {
                left.column_indexes(out);
                right.column_indexes(out);
            }
            Expr::Unary { expr, .. } => expr.column_indexes(out),
            Expr::Like { expr, .. } => expr.column_indexes(out),
            Expr::IsNull(e) => e.column_indexes(out),
            Expr::ColumnRef(_) | Expr::Literal(_) => {}
        }
    }

    /// Whether the expression references no columns (safe to pre-evaluate).
    pub fn is_constant(&self) -> bool {
        let mut names = Vec::new();
        self.column_names(&mut names);
        let mut idx = Vec::new();
        self.column_indexes(&mut idx);
        names.is_empty() && idx.is_empty()
    }

    /// The range-variable prefixes mentioned by unresolved refs (`e.name`
    /// contributes `e`). Used by pushdown to decide which side of a join a
    /// conjunct belongs to.
    pub fn range_vars(&self) -> Vec<String> {
        let mut names = Vec::new();
        self.column_names(&mut names);
        let mut vars: Vec<String> = names
            .into_iter()
            .filter_map(|n| n.split_once('.').map(|(v, _)| v.to_string()))
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Rewrite every resolved column index through `map` (used when an
    /// expression moves across a projection or join boundary).
    pub fn remap_columns(self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(map(i)),
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(left.remap_columns(map)),
                right: Box::new(right.remap_columns(map)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(expr.remap_columns(map)),
            },
            Expr::Like { expr, pattern } => Expr::Like {
                expr: Box::new(expr.remap_columns(map)),
                pattern,
            },
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.remap_columns(map))),
            other => other,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::ColumnRef(n) => f.write_str(n),
            Expr::Literal(Value::Text(s)) => write!(f, "\"{s}\""),
            Expr::Literal(v) if v.is_null() => f.write_str("NULL"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.token())
            }
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => write!(f, "(NOT {expr})"),
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => write!(f, "(-{expr})"),
            Expr::Like { expr, pattern } => write!(f, "({expr} LIKE \"{pattern}\")"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
        }
    }
}

/// Glob match with `*` (any run, including empty) and `?` (exactly one
/// character). Matching is over characters, not bytes, so multibyte UTF-8
/// behaves intuitively.
pub fn glob_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    // Classic two-pointer with backtracking to the last star.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '?' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// Ensure an expression for a predicate position is resolved; helper the
/// executor uses in debug builds.
pub fn assert_resolved(expr: &Expr) -> RelResult<()> {
    let mut names = Vec::new();
    expr.column_names(&mut names);
    if let Some(n) = names.first() {
        return Err(RelError::NoSuchColumn(format!("unresolved: {n}")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("e.name", DataType::Text),
            Column::new("e.salary", DataType::Int),
        ])
    }

    #[test]
    fn resolve_rewrites_names() {
        let e = Expr::col_eq("e.salary", Value::Int(10))
            .resolve(&schema())
            .unwrap();
        match e {
            Expr::Binary { left, .. } => assert_eq!(*left, Expr::Column(1)),
            _ => panic!(),
        }
    }

    #[test]
    fn resolve_unknown_column_errors() {
        assert!(Expr::col_eq("e.bogus", Value::Int(1))
            .resolve(&schema())
            .is_err());
    }

    #[test]
    fn split_and_rejoin_conjuncts() {
        let e = Expr::and(
            Expr::col_eq("a", Value::Int(1)),
            Expr::and(
                Expr::col_eq("b", Value::Int(2)),
                Expr::col_eq("c", Value::Int(3)),
            ),
        );
        let parts = e.split_conjuncts();
        assert_eq!(parts.len(), 3);
        let rejoined = Expr::conjunction(parts);
        assert_eq!(rejoined.split_conjuncts().len(), 3);
    }

    #[test]
    fn conjunction_of_empty_is_true() {
        assert_eq!(Expr::conjunction(vec![]), Expr::Literal(Value::Bool(true)));
    }

    #[test]
    fn range_vars_extracted() {
        let e = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::ColumnRef("e.dept".into())),
            right: Box::new(Expr::ColumnRef("d.dname".into())),
        };
        assert_eq!(e.range_vars(), vec!["d".to_string(), "e".to_string()]);
    }

    #[test]
    fn is_constant_detects_literals_only() {
        assert!(Expr::Literal(Value::Int(1)).is_constant());
        assert!(!Expr::ColumnRef("x".into()).is_constant());
        assert!(!Expr::Column(0).is_constant());
    }

    #[test]
    fn glob_basics() {
        assert!(glob_match("abc", "abc"));
        assert!(!glob_match("abc", "abd"));
        assert!(glob_match("a*c", "abbbc"));
        assert!(glob_match("a*c", "ac"));
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(glob_match("*son", "anderson"));
        assert!(glob_match("Sm*", "Smith"));
        assert!(!glob_match("Sm*", "smith"));
    }

    #[test]
    fn glob_star_backtracking() {
        assert!(glob_match("a*b*c", "aXbYbZc"));
        assert!(!glob_match("a*b*c", "aXbYbZ"));
        assert!(glob_match("**a**", "banana"));
    }

    #[test]
    fn glob_multibyte() {
        assert!(glob_match("?", "é"));
        assert!(glob_match("caf?", "café"));
        assert!(glob_match("*é", "café"));
    }

    #[test]
    fn flipped_comparisons() {
        assert_eq!(BinOp::Lt.flipped(), BinOp::Gt);
        assert_eq!(BinOp::Ge.flipped(), BinOp::Le);
        assert_eq!(BinOp::Eq.flipped(), BinOp::Eq);
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::and(
            Expr::col_eq("e.dept", Value::text("toy")),
            Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(Expr::IsNull(Box::new(Expr::ColumnRef("e.mgr".into())))),
            },
        );
        assert_eq!(
            e.to_string(),
            "((e.dept = \"toy\") AND (NOT (e.mgr IS NULL)))"
        );
    }

    #[test]
    fn remap_columns_applies_function() {
        let e = Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(Expr::Column(0)),
            right: Box::new(Expr::Column(2)),
        };
        let remapped = e.remap_columns(&|i| i + 10);
        let mut idx = Vec::new();
        remapped.column_indexes(&mut idx);
        assert_eq!(idx, vec![10, 12]);
    }
}
