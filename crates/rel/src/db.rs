//! The [`Database`] facade: storage + catalog + WAL + transactions.
//!
//! Every higher layer (views, forms, the window manager) talks to this one
//! object. It owns the buffer pool, the heap file and index handles, the
//! statistics registry, and — when durability is enabled — the write-ahead
//! log.

use crate::catalog::{Catalog, IndexInfo, IndexKind, TableId, TableInfo};
use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::stats::StatsRegistry;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;
use wow_storage::btree::BTree;
use wow_storage::buffer::BufferPool;
use wow_storage::hash_index::{HashIndex, DEFAULT_BUCKETS};
use wow_storage::heap::HeapFile;
use wow_storage::page::{Page, PageId};
use wow_storage::store::{FileStore, MemStore, PageStore};
use wow_storage::wal::{TxnId, Wal};
use wow_storage::Rid;
use wow_storage::StorageResult;

/// Number of buffer-pool frames used by default (8 MiB of cache).
pub const DEFAULT_POOL_FRAMES: usize = 1024;

/// A page store that is either memory- or file-backed, so [`Database`]
/// stays non-generic and pleasant to embed.
pub enum AnyStore {
    /// In-memory pages.
    Mem(MemStore),
    /// File-backed pages.
    File(FileStore),
}

impl PageStore for AnyStore {
    fn allocate(&mut self) -> StorageResult<PageId> {
        match self {
            AnyStore::Mem(s) => s.allocate(),
            AnyStore::File(s) => s.allocate(),
        }
    }
    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        match self {
            AnyStore::Mem(s) => s.read(id, out),
            AnyStore::File(s) => s.read(id, out),
        }
    }
    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        match self {
            AnyStore::Mem(s) => s.write(id, page),
            AnyStore::File(s) => s.write(id, page),
        }
    }
    fn free(&mut self, id: PageId) -> StorageResult<()> {
        match self {
            AnyStore::Mem(s) => s.free(id),
            AnyStore::File(s) => s.free(id),
        }
    }
    fn page_count(&self) -> u64 {
        match self {
            AnyStore::Mem(s) => s.page_count(),
            AnyStore::File(s) => s.page_count(),
        }
    }
    fn sync(&mut self) -> StorageResult<()> {
        match self {
            AnyStore::Mem(s) => s.sync(),
            AnyStore::File(s) => s.sync(),
        }
    }
}

/// Physical index handle.
#[derive(Clone)]
pub(crate) enum IndexHandle {
    BTree(BTree),
    Hash(HashIndex),
}

/// One logged-and-undoable data operation (for `ABORT`). `Delete` keeps
/// the original rid for diagnostics even though replay re-inserts at a
/// fresh rid.
#[derive(Debug)]
#[allow(dead_code)]
pub(crate) enum UndoOp {
    Insert {
        table: TableId,
        rid: Rid,
    },
    Update {
        table: TableId,
        rid: Rid,
        old: Tuple,
    },
    Delete {
        table: TableId,
        rid: Rid,
        old: Tuple,
    },
}

/// Transaction state.
#[derive(Default)]
pub(crate) struct TxnState {
    /// The open explicit transaction, if any.
    pub current: Option<TxnId>,
    /// Next transaction id to hand out.
    pub next: TxnId,
    /// Undo log of the open transaction, oldest first.
    pub undo: Vec<UndoOp>,
}

/// Executor-side counters, readable by benches and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecCounters {
    /// Tuples read by sequential scans.
    pub rows_scanned: u64,
    /// Index probes (equality or range-start).
    pub index_probes: u64,
    /// Tuples produced by joins.
    pub join_rows: u64,
    /// Statements executed.
    pub statements: u64,
    /// Column batches evaluated by the vectorized executor.
    pub batches: u64,
    /// Rows entering vectorized filter passes (selection-vector input).
    pub sel_in: u64,
    /// Rows surviving vectorized filter passes (selection-vector output).
    pub sel_out: u64,
}

/// Resolve the vectorized-executor toggle: the `WOW_VECTORIZED` environment
/// variable (`0`/`false`/`off`, `1`/`true`/`on`) overrides `flag`. The CI
/// matrix sets it to run the whole suite under both engines.
pub fn resolve_vectorized(flag: bool) -> bool {
    match std::env::var("WOW_VECTORIZED") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "0" | "false" | "off" => false,
            "1" | "true" | "on" => true,
            _ => flag,
        },
        Err(_) => flag,
    }
}

/// The database: the "world" that every window looks into.
///
/// The buffer pool is shared (`Arc`) so [`Database::read_replica`] can hand
/// worker threads an independent `Database` view over the same page cache;
/// everything else a replica holds is a snapshot clone of cheap in-memory
/// metadata (catalog, heap page lists, index roots, stats).
pub struct Database {
    pub(crate) pool: Arc<BufferPool<AnyStore>>,
    pub(crate) catalog: Catalog,
    pub(crate) heaps: HashMap<TableId, HeapFile>,
    pub(crate) indexes: HashMap<String, IndexHandle>,
    pub(crate) wal: Option<Wal>,
    pub(crate) stats: StatsRegistry,
    pub(crate) txn: TxnState,
    pub(crate) counters: ExecCounters,
    /// Persistent `RANGE OF var IS table` declarations, QUEL-style.
    pub(crate) ranges: BTreeMap<String, String>,
    /// Worker pool for partitioned scans and parallel join builds.
    pub(crate) par: wow_par::Pool,
    /// Whether scans/filters/projections run on the vectorized batch
    /// executor (the row-at-a-time interpreter is the reference twin).
    pub(crate) vectorized: bool,
    /// Target rows per column batch on the vectorized path.
    pub(crate) batch_size: usize,
    /// Durability bookkeeping when opened via [`Database::open_durable`].
    pub(crate) durable: Option<crate::durable::DurableState>,
}

/// Whether writes to `table` are logged to the WAL. System mirror tables
/// (`__sys_*`) are rebuilt from live counters on demand, so logging them
/// would only bloat the log and force an fsync per refreshed row.
pub(crate) fn wal_logged(table: &str) -> bool {
    !table.starts_with("__sys_")
}

impl Database {
    /// An in-memory database with the default pool size and no WAL.
    pub fn in_memory() -> Database {
        Self::with_store(AnyStore::Mem(MemStore::new()), DEFAULT_POOL_FRAMES)
    }

    /// An in-memory database with an explicit buffer-pool frame count.
    pub fn in_memory_with_frames(frames: usize) -> Database {
        Self::with_store(AnyStore::Mem(MemStore::new()), frames)
    }

    /// A file-backed database (pages persist; catalog is rebuilt by the
    /// embedding application, see `DESIGN.md`).
    pub fn open_file(path: &Path) -> RelResult<Database> {
        Ok(Self::with_store(
            AnyStore::File(FileStore::open(path)?),
            DEFAULT_POOL_FRAMES,
        ))
    }

    pub(crate) fn with_store(store: AnyStore, frames: usize) -> Database {
        Database {
            pool: Arc::new(BufferPool::new(store, frames)),
            catalog: Catalog::new(),
            heaps: HashMap::new(),
            indexes: HashMap::new(),
            wal: None,
            stats: StatsRegistry::new(),
            txn: TxnState::default(),
            counters: ExecCounters::default(),
            ranges: BTreeMap::new(),
            par: wow_par::Pool::default(),
            vectorized: resolve_vectorized(true),
            batch_size: crate::exec::stream::BLOCK_CAP,
            durable: None,
        }
    }

    /// Set the executor's worker-pool width exactly (no environment
    /// override; benches use this to sweep 1/2/4/8 workers).
    pub fn set_workers(&mut self, workers: usize) {
        self.par = wow_par::Pool::new(workers);
    }

    /// The executor's worker-pool width.
    pub fn workers(&self) -> usize {
        self.par.workers()
    }

    /// Turn the vectorized batch executor on or off exactly (no environment
    /// override; the equivalence tests use this to compare both engines).
    pub fn set_vectorized(&mut self, on: bool) {
        self.vectorized = on;
    }

    /// Whether the vectorized batch executor is on.
    pub fn vectorized(&self) -> bool {
        self.vectorized
    }

    /// Set the vectorized executor's target rows per batch (min 1; benches
    /// and the equivalence proptest sweep this).
    pub fn set_batch_size(&mut self, rows: usize) {
        self.batch_size = rows.max(1);
    }

    /// Target rows per column batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// A read-only replica sharing this database's buffer pool.
    ///
    /// The replica clones the in-memory metadata (catalog, heap handles,
    /// index roots, statistics, range declarations) and shares the page
    /// cache, so any read — scans, index probes, view queries — returns
    /// exactly what the source database would return *right now*. It has
    /// no WAL, a fresh transaction state, and a serial worker pool (no
    /// nested parallelism). Writing through a replica is a logic error:
    /// metadata changes would not propagate back.
    pub fn read_replica(&self) -> Database {
        Database {
            pool: Arc::clone(&self.pool),
            catalog: self.catalog.clone(),
            heaps: self.heaps.clone(),
            indexes: self.indexes.clone(),
            wal: None,
            stats: self.stats.clone(),
            txn: TxnState::default(),
            counters: ExecCounters::default(),
            ranges: self.ranges.clone(),
            par: wow_par::Pool::serial(),
            vectorized: self.vectorized,
            batch_size: self.batch_size,
            durable: None,
        }
    }

    /// Enable write-ahead logging (in-memory log; see [`Wal::open`] for a
    /// file-backed one via [`Database::attach_wal`]).
    pub fn with_wal(mut self) -> Database {
        self.wal = Some(Wal::in_memory());
        self
    }

    /// Attach a specific WAL (e.g. a file-backed one).
    pub fn attach_wal(&mut self, wal: Wal) {
        self.wal = Some(wal);
    }

    /// Detach and return the WAL (for crash-simulation tests).
    pub fn take_wal(&mut self) -> Option<Wal> {
        self.wal.take()
    }

    /// Borrow the WAL, if attached.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// The catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Executor counters accumulated so far.
    pub fn counters(&self) -> ExecCounters {
        self.counters
    }

    /// Fold counters accumulated elsewhere (a [`Database::read_replica`]
    /// that did work on another thread) into this database's totals.
    pub fn merge_counters(&mut self, other: ExecCounters) {
        self.counters.rows_scanned += other.rows_scanned;
        self.counters.index_probes += other.index_probes;
        self.counters.join_rows += other.join_rows;
        self.counters.statements += other.statements;
        self.counters.batches += other.batches;
        self.counters.sel_in += other.sel_in;
        self.counters.sel_out += other.sel_out;
    }

    /// Reset executor counters (benches call this between phases).
    pub fn reset_counters(&mut self) {
        self.counters = ExecCounters::default();
        self.pool.reset_stats();
    }

    /// Buffer-pool statistics.
    pub fn pool_stats(&self) -> wow_storage::buffer::PoolStats {
        self.pool.stats()
    }

    // -- DDL ----------------------------------------------------------------

    /// Create a table. `key` names the primary-key columns (possibly empty);
    /// when non-empty a unique B+tree index `pk_<table>` is created on them
    /// automatically — the ordered access path browse cursors rely on.
    pub fn create_table(&mut self, name: &str, schema: Schema, key: &[&str]) -> RelResult<TableId> {
        let key_idx: Vec<usize> = key
            .iter()
            .map(|k| schema.resolve(k))
            .collect::<RelResult<_>>()?;
        let id = self.create_table_at(
            name,
            self.catalog.next_table_id(),
            schema.clone(),
            key_idx.clone(),
        )?;
        if wal_logged(name) {
            self.log_ddl(crate::durable::encode_create_table(
                id, name, &schema, &key_idx,
            ))?;
        }
        Ok(id)
    }

    /// Create a table under an explicit id, without WAL logging — the shared
    /// body of [`Database::create_table`] and DDL replay (which must honor
    /// the id recorded in the log).
    pub(crate) fn create_table_at(
        &mut self,
        name: &str,
        id: TableId,
        schema: Schema,
        key_idx: Vec<usize>,
    ) -> RelResult<TableId> {
        if self.catalog.has_table(name) {
            return Err(RelError::AlreadyExists(name.to_string()));
        }
        let heap = HeapFile::create(&self.pool)?;
        let heap_meta = heap.meta_page();
        let id = self
            .catalog
            .add_table_with_id(name, id, schema, heap_meta, key_idx.clone())?;
        self.heaps.insert(id, heap);
        if !key_idx.is_empty() {
            let pk_name = format!("pk_{name}");
            self.create_index_internal(&pk_name, name, key_idx, IndexKind::BTree, true)?;
        }
        Ok(id)
    }

    /// Create a secondary index on one column, backfilling existing rows.
    pub fn create_index(
        &mut self,
        index_name: &str,
        table: &str,
        column: &str,
        kind: IndexKind,
        unique: bool,
    ) -> RelResult<()> {
        let col = self.catalog.table(table)?.schema.resolve(column)?;
        self.create_index_internal(index_name, table, vec![col], kind, unique)?;
        if wal_logged(table) {
            self.log_ddl(crate::durable::encode_create_index(
                index_name,
                table,
                &[col],
                kind,
                unique,
            ))?;
        }
        Ok(())
    }

    /// Log one DDL statement as its own committed transaction (DDL is not
    /// undoable, so it never joins the open transaction's undo scope).
    pub(crate) fn log_ddl(&mut self, payload: Vec<u8>) -> RelResult<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        let txn = self.txn.next;
        self.txn.next += 1;
        let wal = self.wal.as_mut().expect("checked above");
        wal.append(&wow_storage::wal::LogRecord::Ddl {
            txn,
            bytes: payload,
        })?;
        wal.append(&wow_storage::wal::LogRecord::Commit { txn })?;
        wal.flush()?;
        Ok(())
    }

    /// Open an index handle from its meta page and register it (checkpoint
    /// restore; the catalog entry must already exist).
    pub(crate) fn open_index_handle(
        &mut self,
        name: &str,
        kind: IndexKind,
        meta: PageId,
    ) -> RelResult<()> {
        let handle = match kind {
            IndexKind::BTree => IndexHandle::BTree(BTree::open(&self.pool, meta)?),
            IndexKind::Hash => IndexHandle::Hash(HashIndex::open(&self.pool, meta)?),
        };
        self.indexes.insert(name.to_string(), handle);
        Ok(())
    }

    pub(crate) fn create_index_internal(
        &mut self,
        index_name: &str,
        table: &str,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    ) -> RelResult<()> {
        if self.indexes.contains_key(index_name) {
            return Err(RelError::AlreadyExists(index_name.to_string()));
        }
        let tinfo = self.catalog.table(table)?.clone();
        let handle = match kind {
            IndexKind::BTree => {
                // Non-unique B+trees store composite (key ++ rid) entries, so
                // the tree itself is created unique either way.
                IndexHandle::BTree(BTree::create(&self.pool, unique)?)
            }
            IndexKind::Hash => IndexHandle::Hash(HashIndex::create(&self.pool, DEFAULT_BUCKETS)?),
        };
        let meta = match &handle {
            IndexHandle::BTree(t) => t.meta_page(),
            IndexHandle::Hash(h) => h.meta_page(),
        };
        self.catalog
            .add_index(index_name, table, columns.clone(), kind, unique, meta)?;
        self.indexes.insert(index_name.to_string(), handle);
        // Backfill from existing rows.
        let rows = self.scan_table_raw(tinfo.id)?;
        for (rid, tuple) in rows {
            let idx = self.catalog.index(index_name)?.clone();
            self.index_insert(&idx, &tuple, rid)?;
        }
        Ok(())
    }

    /// Drop a table, its heap, and its indexes.
    pub fn drop_table(&mut self, name: &str) -> RelResult<()> {
        let logged = self.catalog.has_table(name) && wal_logged(name);
        let (info, indexes) = self.catalog.remove_table(name)?;
        if let Some(heap) = self.heaps.remove(&info.id) {
            heap.destroy(&self.pool)?;
        }
        for idx in indexes {
            if let Some(handle) = self.indexes.remove(&idx.name) {
                match handle {
                    IndexHandle::BTree(t) => t.destroy(&self.pool)?,
                    IndexHandle::Hash(h) => h.destroy(&self.pool)?,
                }
            }
        }
        self.stats.remove(info.id);
        self.ranges.retain(|_, t| t != name);
        if logged {
            self.log_ddl(crate::durable::encode_drop_table(name))?;
        }
        Ok(())
    }

    /// Drop a secondary index.
    pub fn drop_index(&mut self, name: &str) -> RelResult<()> {
        let logged = match self.catalog.index(name) {
            Ok(info) => self
                .catalog
                .table_by_id(info.table)
                .map(|t| wal_logged(&t.name))
                .unwrap_or(false),
            Err(_) => false,
        };
        let info = self.catalog.remove_index(name)?;
        if let Some(handle) = self.indexes.remove(&info.name) {
            match handle {
                IndexHandle::BTree(t) => t.destroy(&self.pool)?,
                IndexHandle::Hash(h) => h.destroy(&self.pool)?,
            }
        }
        if logged {
            self.log_ddl(crate::durable::encode_drop_index(name))?;
        }
        Ok(())
    }

    // -- Range variables ------------------------------------------------------

    /// Declare `RANGE OF var IS table` (persists across statements, as in
    /// QUEL).
    pub fn declare_range(&mut self, var: &str, table: &str) -> RelResult<()> {
        if !self.catalog.has_table(table) {
            return Err(RelError::NoSuchTable(table.to_string()));
        }
        self.ranges.insert(var.to_string(), table.to_string());
        Ok(())
    }

    /// Resolve a range variable to its table name.
    pub fn range_table(&self, var: &str) -> RelResult<&str> {
        self.ranges
            .get(var)
            .map(|s| s.as_str())
            .ok_or_else(|| RelError::NoSuchRange(var.to_string()))
    }

    /// All declared range variables.
    pub fn ranges(&self) -> &BTreeMap<String, String> {
        &self.ranges
    }

    // -- Row access ----------------------------------------------------------

    /// Fetch one row by rid.
    pub fn get_row(&mut self, table: TableId, rid: Rid) -> RelResult<Option<Tuple>> {
        let heap = self
            .heaps
            .get(&table)
            .ok_or_else(|| RelError::NoSuchTable(format!("#{table}")))?;
        match heap.get(&self.pool, rid)? {
            None => Ok(None),
            Some(bytes) => Ok(Some(Tuple::decode(&bytes)?)),
        }
    }

    /// Scan a full table into memory as `(rid, tuple)` pairs.
    pub fn scan_table_raw(&mut self, table: TableId) -> RelResult<Vec<(Rid, Tuple)>> {
        let heap = self
            .heaps
            .get(&table)
            .ok_or_else(|| RelError::NoSuchTable(format!("#{table}")))?;
        let mut decode_err = None;
        let mut out = Vec::with_capacity(heap.len() as usize);
        heap.scan(&self.pool, |rid, bytes| match Tuple::decode(bytes) {
            Ok(t) => out.push((rid, t)),
            Err(e) => decode_err = Some(e),
        })?;
        if let Some(e) = decode_err {
            return Err(e);
        }
        self.counters.rows_scanned += out.len() as u64;
        Ok(out)
    }

    /// Scan one data page of a table as `(rid, tuple)` pairs — the
    /// page-at-a-time sequential access used by the streaming executor.
    /// Returns `None` once `page_idx` is past the end of the heap's page
    /// chain. Sequential calls trigger buffer-pool readahead (see
    /// [`wow_storage::heap::HeapFile::scan_page`]).
    pub fn scan_table_page(
        &mut self,
        table: TableId,
        page_idx: usize,
    ) -> RelResult<Option<Vec<(Rid, Tuple)>>> {
        let heap = self
            .heaps
            .get(&table)
            .ok_or_else(|| RelError::NoSuchTable(format!("#{table}")))?;
        let mut decode_err = None;
        let mut out = Vec::new();
        let in_range = heap.scan_page(&self.pool, page_idx, |rid, bytes| {
            match Tuple::decode(bytes) {
                Ok(t) => out.push((rid, t)),
                Err(e) => decode_err = Some(e),
            }
        })?;
        if let Some(e) = decode_err {
            return Err(e);
        }
        if !in_range {
            return Ok(None);
        }
        self.counters.rows_scanned += out.len() as u64;
        Ok(Some(out))
    }

    /// Scan one data page of encoded rows into a caller-owned arena (see
    /// [`wow_storage::heap::HeapFile::scan_page_into`]) — the zero-decode
    /// access path of the vectorized executor, which decodes only the
    /// columns a query touches ([`crate::value::decode_row_cols`]) and
    /// reuses `arena`/`bounds` across pages so a page scan costs one
    /// region copy and no per-row allocation. Returns `false` once
    /// `page_idx` is past the end of the page chain. Counts every visited
    /// row in `rows_scanned`, like [`Database::scan_table_page`].
    pub(crate) fn scan_table_page_arena(
        &mut self,
        table: TableId,
        page_idx: usize,
        arena: &mut Vec<u8>,
        bounds: &mut Vec<(u32, u32)>,
    ) -> RelResult<bool> {
        let heap = self
            .heaps
            .get(&table)
            .ok_or_else(|| RelError::NoSuchTable(format!("#{table}")))?;
        let before = bounds.len();
        let in_range = heap.scan_page_into(&self.pool, page_idx, arena, bounds)?;
        self.counters.rows_scanned += (bounds.len() - before) as u64;
        Ok(in_range)
    }

    /// Number of rows in a table (from stats, exact under normal operation).
    pub fn row_count(&self, table: TableId) -> u64 {
        self.stats.get(table).rows
    }

    /// Number of heap data pages of a table (scan-partitioning unit).
    pub(crate) fn table_page_count(&self, table: TableId) -> RelResult<usize> {
        self.heaps
            .get(&table)
            .map(|h| h.page_count())
            .ok_or_else(|| RelError::NoSuchTable(format!("#{table}")))
    }

    /// Full statistics for a table (row count plus any analyzed
    /// distinct-value estimates).
    pub fn table_stats(&self, table: TableId) -> crate::stats::TableStats {
        self.stats.get(table)
    }

    /// The primary-key values of a tuple of `table`, or `None` if the table
    /// has no declared key.
    pub fn key_of(&self, table: &TableInfo, tuple: &Tuple) -> Option<Vec<Value>> {
        if table.key.is_empty() {
            return None;
        }
        Some(table.key.iter().map(|&i| tuple.values[i].clone()).collect())
    }

    /// Recompute per-column distinct counts for a table (ANALYZE).
    pub fn analyze(&mut self, table: &str) -> RelResult<()> {
        let info = self.catalog.table(table)?.clone();
        let rows = self.scan_table_raw(info.id)?;
        let mut distinct: HashMap<usize, u64> = HashMap::new();
        for col in 0..info.schema.len() {
            let mut seen: Vec<&Value> = rows.iter().map(|(_, t)| &t.values[col]).collect();
            seen.sort_by(|a, b| a.total_cmp(b));
            seen.dedup_by(|a, b| *a == *b);
            distinct.insert(col, seen.len() as u64);
        }
        self.stats.set_distinct(info.id, distinct);
        // Row count may have drifted if stats were bypassed; resync.
        self.stats.entry(info.id).rows = rows.len() as u64;
        Ok(())
    }

    // -- Index plumbing (used by dml and exec) --------------------------------

    /// Build the key bytes for an index entry of `tuple`.
    pub(crate) fn index_key(idx: &IndexInfo, tuple: &Tuple) -> Vec<u8> {
        let vals: Vec<Value> = idx
            .columns
            .iter()
            .map(|&i| tuple.values[i].clone())
            .collect();
        Value::encode_composite(&vals)
    }

    pub(crate) fn index_insert(
        &mut self,
        idx: &IndexInfo,
        tuple: &Tuple,
        rid: Rid,
    ) -> RelResult<()> {
        let key = Self::index_key(idx, tuple);
        match self.indexes.get_mut(&idx.name).expect("handle exists") {
            IndexHandle::BTree(t) => {
                if idx.unique {
                    t.insert(&self.pool, &key, rid).map_err(|e| match e {
                        wow_storage::StorageError::DuplicateKey => {
                            RelError::UniqueViolation(idx.name.clone())
                        }
                        other => other.into(),
                    })?;
                } else {
                    let ck = wow_storage::btree::composite_key(&key, rid);
                    t.insert(&self.pool, &ck, rid)?;
                }
            }
            IndexHandle::Hash(h) => {
                if idx.unique && !h.lookup(&self.pool, &key)?.is_empty() {
                    return Err(RelError::UniqueViolation(idx.name.clone()));
                }
                h.insert(&self.pool, &key, rid)?;
            }
        }
        Ok(())
    }

    pub(crate) fn index_delete(
        &mut self,
        idx: &IndexInfo,
        tuple: &Tuple,
        rid: Rid,
    ) -> RelResult<()> {
        let key = Self::index_key(idx, tuple);
        match self.indexes.get_mut(&idx.name).expect("handle exists") {
            IndexHandle::BTree(t) => {
                if idx.unique {
                    t.delete(&self.pool, &key, rid)?;
                } else {
                    let ck = wow_storage::btree::composite_key(&key, rid);
                    t.delete(&self.pool, &ck, rid)?;
                }
            }
            IndexHandle::Hash(h) => {
                h.delete(&self.pool, &key, rid)?;
            }
        }
        Ok(())
    }

    /// Probe an index for exact-match rids on `values` (the index's full
    /// column list).
    pub fn index_lookup(&mut self, index_name: &str, values: &[Value]) -> RelResult<Vec<Rid>> {
        let idx = self.catalog.index(index_name)?.clone();
        let key = Value::encode_composite(values);
        self.counters.index_probes += 1;
        match self.indexes.get_mut(&idx.name).expect("handle exists") {
            IndexHandle::BTree(t) => {
                if idx.unique {
                    Ok(t.lookup(&self.pool, &key)?)
                } else {
                    Ok(t.lookup_prefix(&self.pool, &key)?)
                }
            }
            IndexHandle::Hash(h) => Ok(h.lookup(&self.pool, &key)?),
        }
    }

    /// Whether an index holds any entry for `values` — the allocation-free
    /// existence probe delta propagation uses to decide if a write joins
    /// with anything before running a residual query.
    pub fn index_probe_exists(&mut self, index_name: &str, values: &[Value]) -> RelResult<bool> {
        let idx = self.catalog.index(index_name)?.clone();
        let key = Value::encode_composite(values);
        self.counters.index_probes += 1;
        match self.indexes.get_mut(&idx.name).expect("handle exists") {
            IndexHandle::BTree(t) => {
                if idx.unique {
                    Ok(t.contains(&self.pool, &key)?)
                } else {
                    Ok(t.contains_prefix(&self.pool, &key)?)
                }
            }
            IndexHandle::Hash(h) => Ok(h.contains(&self.pool, &key)?),
        }
    }

    /// The name of an index of `table` whose key is exactly the single
    /// column `column`, if one exists (primary-key indexes included when
    /// the key is that one column).
    pub fn index_on(&self, table: &str, column: &str) -> Option<String> {
        let info = self.catalog.table(table).ok()?;
        let col = info.schema.resolve(column).ok()?;
        for idx_name in &info.indexes {
            let idx = self.catalog.index(idx_name).ok()?;
            if idx.columns == [col] {
                return Some(idx_name.clone());
            }
        }
        None
    }

    /// Fetch one *page* of index entries in key order, starting strictly
    /// after `after` (pass `None` to start at the beginning). Returns up to
    /// `limit` `(key, rid)` pairs. This is the incremental access path that
    /// browse cursors page through — cost is proportional to the page, not
    /// the relation.
    pub fn index_scan_page(
        &mut self,
        index: &str,
        after: Option<&[u8]>,
        limit: usize,
    ) -> RelResult<Vec<(Vec<u8>, Rid)>> {
        let idx = self.catalog.index(index)?.clone();
        let IndexHandle::BTree(tree) = self.indexes.get(&idx.name).expect("handle exists") else {
            return Err(RelError::Unsupported(
                "ordered paging requires a B+tree index".into(),
            ));
        };
        self.counters.index_probes += 1;
        let mut out = Vec::with_capacity(limit);
        let lower = match after {
            Some(k) => std::ops::Bound::Excluded(k),
            None => std::ops::Bound::Unbounded,
        };
        tree.range_scan(&self.pool, lower, std::ops::Bound::Unbounded, |k, rid| {
            out.push((k.to_vec(), rid));
            out.len() < limit
        })?;
        Ok(out)
    }

    // -- Transactions ----------------------------------------------------------

    /// Begin an explicit transaction.
    pub fn begin(&mut self) -> RelResult<TxnId> {
        if self.txn.current.is_some() {
            return Err(RelError::Txn("transaction already open"));
        }
        let id = self.txn.next;
        self.txn.next += 1;
        self.txn.current = Some(id);
        self.txn.undo.clear();
        if let Some(wal) = &mut self.wal {
            wal.append(&wow_storage::wal::LogRecord::Begin { txn: id })?;
        }
        Ok(id)
    }

    /// Commit the open transaction (durable if a WAL is attached).
    pub fn commit(&mut self) -> RelResult<()> {
        let Some(id) = self.txn.current.take() else {
            return Err(RelError::Txn("no open transaction"));
        };
        self.txn.undo.clear();
        if let Some(wal) = &mut self.wal {
            wal.append(&wow_storage::wal::LogRecord::Commit { txn: id })?;
            wal.flush()?;
        }
        self.note_commit()?;
        Ok(())
    }

    /// Abort the open transaction, rolling back its data changes.
    pub fn abort(&mut self) -> RelResult<()> {
        let Some(id) = self.txn.current.take() else {
            return Err(RelError::Txn("no open transaction"));
        };
        let undo = std::mem::take(&mut self.txn.undo);
        for op in undo.into_iter().rev() {
            self.apply_undo(op)?;
        }
        if let Some(wal) = &mut self.wal {
            wal.append(&wow_storage::wal::LogRecord::Abort { txn: id })?;
        }
        Ok(())
    }

    /// The next transaction id that would be handed out (test visibility).
    #[cfg(test)]
    pub(crate) fn txn_next_for_tests(&self) -> TxnId {
        self.txn.next
    }

    /// The transaction id DML should log under: the open transaction, or a
    /// fresh auto-commit id. Returns `(txn, auto_commit)`.
    pub(crate) fn dml_txn(&mut self) -> (TxnId, bool) {
        match self.txn.current {
            Some(id) => (id, false),
            None => {
                let id = self.txn.next;
                self.txn.next += 1;
                (id, true)
            }
        }
    }

    fn apply_undo(&mut self, op: UndoOp) -> RelResult<()> {
        match op {
            UndoOp::Insert { table, rid } => {
                // Reverse of insert: physically delete, maintain indexes.
                if let Some(tuple) = self.get_row(table, rid)? {
                    let info = self.catalog.table_by_id(table)?.clone();
                    for idx_name in &info.indexes {
                        let idx = self.catalog.index(idx_name)?.clone();
                        self.index_delete(&idx, &tuple, rid)?;
                    }
                    let heap = self.heaps.get_mut(&table).expect("heap exists");
                    heap.delete(&self.pool, rid)?;
                    self.stats.on_delete(table, 1);
                }
            }
            UndoOp::Update { table, rid, old } => {
                if let Some(new) = self.get_row(table, rid)? {
                    let info = self.catalog.table_by_id(table)?.clone();
                    for idx_name in &info.indexes {
                        let idx = self.catalog.index(idx_name)?.clone();
                        self.index_delete(&idx, &new, rid)?;
                        self.index_insert(&idx, &old, rid)?;
                    }
                    let heap = self.heaps.get_mut(&table).expect("heap exists");
                    heap.update(&self.pool, rid, &old.encode())?;
                }
            }
            UndoOp::Delete { table, rid: _, old } => {
                // Reverse of delete: re-insert. The rid may change; indexes
                // are rebuilt against the new rid.
                let heap = self.heaps.get_mut(&table).expect("heap exists");
                let new_rid = heap.insert(&self.pool, &old.encode())?;
                let info = self.catalog.table_by_id(table)?.clone();
                for idx_name in &info.indexes {
                    let idx = self.catalog.index(idx_name)?.clone();
                    self.index_insert(&idx, &old, new_rid)?;
                }
                self.stats.on_insert(table, 1);
            }
        }
        Ok(())
    }

    /// Flush all dirty pages (and the WAL) to the backing store.
    pub fn checkpoint(&mut self) -> RelResult<()> {
        if let Some(wal) = &mut self.wal {
            wal.flush()?;
        }
        self.pool.flush_all()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Statement execution (the QUEL front door)
// ---------------------------------------------------------------------------

impl Database {
    /// Parse and execute a QUEL program. Returns the rows of the *last*
    /// `RETRIEVE` (or `EXPLAIN`) in the program; other statements return an
    /// empty result.
    pub fn run(&mut self, src: &str) -> RelResult<crate::exec::Rows> {
        use crate::quel::Statement;
        let stmts = crate::quel::parse_program(src)?;
        let mut last = crate::exec::Rows::empty(Schema::default());
        for stmt in stmts {
            match stmt {
                Statement::CreateTable { name, columns } => {
                    let mut cols = Vec::with_capacity(columns.len());
                    let mut key: Vec<String> = Vec::new();
                    for c in &columns {
                        cols.push(if c.not_null {
                            crate::schema::Column::not_null(c.name.clone(), c.ty)
                        } else {
                            crate::schema::Column::new(c.name.clone(), c.ty)
                        });
                        if c.key {
                            key.push(c.name.clone());
                        }
                    }
                    let key_refs: Vec<&str> = key.iter().map(|s| s.as_str()).collect();
                    self.create_table(&name, Schema::new(cols), &key_refs)?;
                }
                Statement::CreateIndex {
                    name,
                    table,
                    column,
                    kind,
                    unique,
                } => {
                    self.create_index(&name, &table, &column, kind, unique)?;
                }
                Statement::DropTable(name) => self.drop_table(&name)?,
                Statement::DropIndex(name) => self.drop_index(&name)?,
                Statement::RangeOf { var, table } => self.declare_range(&var, &table)?,
                Statement::Retrieve(r) => {
                    let block = crate::plan::build_query_block(self, &r)?;
                    let plan = crate::plan::optimize(self, &block)?;
                    last = crate::exec::execute(self, &plan)?;
                    self.counters.statements += 1;
                }
                Statement::Explain(r) => {
                    let block = crate::plan::build_query_block(self, &r)?;
                    let plan = crate::plan::optimize(self, &block)?;
                    last = crate::exec::Rows {
                        schema: Schema::new(vec![crate::schema::Column::new(
                            "plan",
                            crate::types::DataType::Text,
                        )]),
                        tuples: plan
                            .explain()
                            .lines()
                            .map(|l| Tuple::new(vec![Value::text(l)]))
                            .collect(),
                    };
                }
                Statement::ExplainAnalyze(r) => {
                    let block = crate::plan::build_query_block(self, &r)?;
                    let plan = crate::plan::optimize(self, &block)?;
                    let (_rows, profile) = crate::exec::execute_analyzed(self, &plan)?;
                    self.counters.statements += 1;
                    last = crate::exec::Rows {
                        schema: Schema::new(vec![crate::schema::Column::new(
                            "plan",
                            crate::types::DataType::Text,
                        )]),
                        tuples: profile
                            .render(&plan)
                            .lines()
                            .map(|l| Tuple::new(vec![Value::text(l)]))
                            .collect(),
                    };
                }
                Statement::Append { table, assigns } => {
                    self.exec_append(&table, &assigns)?;
                }
                Statement::Replace {
                    var,
                    assigns,
                    where_,
                } => {
                    self.exec_replace(&var, &assigns, where_.as_ref())?;
                }
                Statement::Delete { var, where_ } => {
                    self.exec_delete(&var, where_.as_ref())?;
                }
                Statement::Begin => {
                    self.begin()?;
                }
                Statement::Commit => self.commit()?,
                Statement::Abort => self.abort()?,
                Statement::Analyze(table) => self.analyze(&table)?,
            }
        }
        Ok(last)
    }

    fn exec_append(
        &mut self,
        table: &str,
        assigns: &[(String, crate::expr::Expr)],
    ) -> RelResult<()> {
        let info = self.catalog.table(table)?.clone();
        let empty = Tuple::default();
        let mut values = vec![Value::Null; info.schema.len()];
        for (col, expr) in assigns {
            let i = info.schema.resolve(col)?;
            if !expr.is_constant() {
                return Err(RelError::Unsupported(format!(
                    "APPEND value for `{col}` must be constant"
                )));
            }
            values[i] = crate::eval::eval(expr, &empty)?;
        }
        self.insert(table, values)?;
        Ok(())
    }

    /// Rows of `var`'s table matching `where_`, as `(rid, tuple)` pairs.
    pub(crate) fn matching_rows(
        &mut self,
        var: &str,
        where_: Option<&crate::expr::Expr>,
    ) -> RelResult<(String, Vec<(Rid, Tuple)>)> {
        let table = self.range_table(var)?.to_string();
        let info = self.catalog.table(&table)?.clone();
        let qualified = info.schema.qualified(var);
        let pred = match where_ {
            Some(w) => Some(w.clone().resolve(&qualified)?),
            None => None,
        };
        let rows = self.scan_table_raw(info.id)?;
        let mut hits = Vec::new();
        for (rid, t) in rows {
            let keep = match &pred {
                Some(p) => crate::eval::eval_pred(p, &t)?,
                None => true,
            };
            if keep {
                hits.push((rid, t));
            }
        }
        Ok((table, hits))
    }

    fn exec_replace(
        &mut self,
        var: &str,
        assigns: &[(String, crate::expr::Expr)],
        where_: Option<&crate::expr::Expr>,
    ) -> RelResult<u64> {
        let (table, hits) = self.matching_rows(var, where_)?;
        let info = self.catalog.table(&table)?.clone();
        let qualified = info.schema.qualified(var);
        // Resolve assignment expressions once against the qualified schema.
        let mut resolved: Vec<(usize, crate::expr::Expr)> = Vec::with_capacity(assigns.len());
        for (col, expr) in assigns {
            let i = info.schema.resolve(col)?;
            resolved.push((i, expr.clone().resolve(&qualified)?));
        }
        let mut n = 0;
        for (rid, tuple) in hits {
            let mut new_vals = tuple.values.clone();
            for (i, expr) in &resolved {
                new_vals[*i] = crate::eval::eval(expr, &tuple)?;
            }
            if self.update_rid(&table, rid, new_vals)? {
                n += 1;
            }
        }
        Ok(n)
    }

    fn exec_delete(&mut self, var: &str, where_: Option<&crate::expr::Expr>) -> RelResult<u64> {
        let (table, hits) = self.matching_rows(var, where_)?;
        let mut n = 0;
        for (rid, _) in hits {
            if self.delete_rid(&table, rid)? {
                n += 1;
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Column::not_null("name", DataType::Text),
            Column::new("dept", DataType::Text),
            Column::new("salary", DataType::Int),
        ])
    }

    #[test]
    fn create_table_makes_pk_index() {
        let mut db = Database::in_memory();
        db.create_table("emp", emp_schema(), &["name"]).unwrap();
        let info = db.catalog().table("emp").unwrap();
        assert_eq!(info.key, vec![0]);
        assert_eq!(info.indexes, vec!["pk_emp"]);
        let idx = db.catalog().index("pk_emp").unwrap();
        assert!(idx.unique);
        assert_eq!(idx.kind, IndexKind::BTree);
    }

    #[test]
    fn duplicate_table_is_rejected() {
        let mut db = Database::in_memory();
        db.create_table("emp", emp_schema(), &[]).unwrap();
        assert!(db.create_table("emp", emp_schema(), &[]).is_err());
    }

    #[test]
    fn bad_key_column_is_rejected() {
        let mut db = Database::in_memory();
        assert!(db.create_table("emp", emp_schema(), &["bogus"]).is_err());
    }

    #[test]
    fn range_declarations() {
        let mut db = Database::in_memory();
        db.create_table("emp", emp_schema(), &[]).unwrap();
        db.declare_range("e", "emp").unwrap();
        assert_eq!(db.range_table("e").unwrap(), "emp");
        assert!(db.declare_range("x", "nope").is_err());
        assert!(db.range_table("z").is_err());
        db.drop_table("emp").unwrap();
        assert!(db.range_table("e").is_err(), "range dies with its table");
    }

    #[test]
    fn txn_misuse_errors() {
        let mut db = Database::in_memory();
        assert!(db.commit().is_err());
        assert!(db.abort().is_err());
        db.begin().unwrap();
        assert!(db.begin().is_err());
        db.commit().unwrap();
    }

    #[test]
    fn drop_table_frees_everything() {
        let mut db = Database::in_memory();
        db.create_table("emp", emp_schema(), &["name"]).unwrap();
        db.create_index("by_dept", "emp", "dept", IndexKind::Hash, false)
            .unwrap();
        db.drop_table("emp").unwrap();
        assert!(db.catalog().table("emp").is_err());
        assert!(db.catalog().index("pk_emp").is_err());
        assert!(db.catalog().index("by_dept").is_err());
        // Name can be reused.
        db.create_table("emp", emp_schema(), &["name"]).unwrap();
    }
}
