//! Typed write deltas: the unit of incremental view maintenance.
//!
//! Every committed write is captured as a [`BaseDelta`] — the inserted,
//! deleted, and updated tuples of one base table, each with its rid. The
//! view layer pushes these through the classic delta rules (selection
//! filters the delta, projection rewrites it, join probes the other side)
//! instead of re-running whole view queries after each commit.

use crate::expr::Expr;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use wow_storage::Rid;

/// The delta of one write (or one small batch of writes) to a base table.
#[derive(Debug, Clone, Default)]
pub struct BaseDelta {
    /// The written base table.
    pub table: String,
    /// Rows that now exist and did not before.
    pub inserted: Vec<(Rid, Tuple)>,
    /// Rows that existed and no longer do (rid is the old rid).
    pub deleted: Vec<(Rid, Tuple)>,
    /// Rows changed in place: `(rid, old, new)`.
    pub updated: Vec<(Rid, Tuple, Tuple)>,
}

impl BaseDelta {
    /// An empty delta for `table`.
    pub fn new(table: impl Into<String>) -> BaseDelta {
        BaseDelta {
            table: table.into(),
            ..BaseDelta::default()
        }
    }

    /// A single-row insert delta.
    pub fn insert(table: impl Into<String>, rid: Rid, row: Tuple) -> BaseDelta {
        let mut d = BaseDelta::new(table);
        d.inserted.push((rid, row));
        d
    }

    /// A single-row delete delta.
    pub fn delete(table: impl Into<String>, rid: Rid, old: Tuple) -> BaseDelta {
        let mut d = BaseDelta::new(table);
        d.deleted.push((rid, old));
        d
    }

    /// A single-row update delta.
    pub fn update(table: impl Into<String>, rid: Rid, old: Tuple, new: Tuple) -> BaseDelta {
        let mut d = BaseDelta::new(table);
        d.updated.push((rid, old, new));
        d
    }

    /// Whether the delta carries no rows at all.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty() && self.updated.is_empty()
    }

    /// Total number of delta rows (updates count once).
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len() + self.updated.len()
    }
}

/// Substitute every column reference `var.col` in `expr` with the literal
/// value that `row` (shaped by the `var`-qualified `schema`) holds for it.
///
/// This is how join delta rules "probe the other side": binding the written
/// relation's variable to one concrete delta row turns the view query into
/// a residual query over the remaining relations, whose equality conjuncts
/// the optimizer then satisfies with index probes.
pub fn bind_var(expr: &Expr, schema: &Schema, row: &Tuple) -> Expr {
    match expr {
        Expr::ColumnRef(n) => match schema.index_of(n) {
            Some(i) => Expr::Literal(row.values[i].clone()),
            None => Expr::ColumnRef(n.clone()),
        },
        Expr::Column(i) => Expr::Column(*i),
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(bind_var(left, schema, row)),
            right: Box::new(bind_var(right, schema, row)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_var(expr, schema, row)),
        },
        Expr::Like { expr, pattern } => Expr::Like {
            expr: Box::new(bind_var(expr, schema, row)),
            pattern: pattern.clone(),
        },
        Expr::IsNull(e) => Expr::IsNull(Box::new(bind_var(e, schema, row))),
    }
}

/// The primary-key index key bytes of `row` under `key_cols`, or `None`
/// when the table has no declared key. Matches the encoding `pk_<table>`
/// B+tree indexes store, so browse cursors can place delta rows by key.
pub fn key_bytes(key_cols: &[usize], row: &Tuple) -> Option<Vec<u8>> {
    if key_cols.is_empty() {
        return None;
    }
    let vals: Vec<Value> = key_cols.iter().map(|&i| row.values[i].clone()).collect();
    Some(Value::encode_composite(&vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;
    use crate::schema::Column;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("s.sno", DataType::Int),
            Column::new("s.city", DataType::Text),
        ])
    }

    #[test]
    fn bind_var_substitutes_matching_refs() {
        let row = Tuple::new(vec![Value::Int(7), Value::text("london")]);
        let e = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::ColumnRef("s.sno".into())),
            right: Box::new(Expr::ColumnRef("sp.sno".into())),
        };
        let bound = bind_var(&e, &schema(), &row);
        match bound {
            Expr::Binary { left, right, .. } => {
                assert_eq!(*left, Expr::Literal(Value::Int(7)));
                assert_eq!(*right, Expr::ColumnRef("sp.sno".into()));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn delta_constructors_and_len() {
        let rid = Rid::new(wow_storage::page::PageId(1), 0);
        let t = Tuple::new(vec![Value::Int(1)]);
        let d = BaseDelta::update("supplier", rid, t.clone(), t.clone());
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        assert!(BaseDelta::new("supplier").is_empty());
        assert_eq!(BaseDelta::insert("s", rid, t.clone()).inserted.len(), 1);
        assert_eq!(BaseDelta::delete("s", rid, t).deleted.len(), 1);
    }

    #[test]
    fn key_bytes_orders_like_the_index() {
        let a = Tuple::new(vec![Value::Int(1), Value::text("x")]);
        let b = Tuple::new(vec![Value::Int(2), Value::text("a")]);
        let ka = key_bytes(&[0], &a).unwrap();
        let kb = key_bytes(&[0], &b).unwrap();
        assert!(ka < kb);
        assert!(key_bytes(&[], &a).is_none());
    }
}
