//! # wow-rel
//!
//! The relational database engine underneath *Windows on the World*.
//!
//! The 1983 system was built over an INGRES-class DBMS; this crate is that
//! substrate, built from scratch on `wow-storage`:
//!
//! * [`types`] / [`value`] — the type system and runtime values, including
//!   order-preserving key encodings and row serialization.
//! * [`schema`] / [`mod@tuple`] — relation schemas and tuples.
//! * [`expr`] / [`eval`] — scalar expressions with SQL-style three-valued
//!   logic, `LIKE`-style pattern matching, and arithmetic.
//! * [`catalog`] — tables, indexes, and their storage roots.
//! * [`db`] — the [`db::Database`] facade tying storage, catalog, WAL and
//!   transactions together.
//! * [`dml`] — insert/update/delete with index maintenance and undo.
//! * [`delta`] — typed write deltas ([`delta::BaseDelta`]) and the binding
//!   helpers incremental view maintenance pushes through view algebra.
//! * [`exec`] — physical operators: scans, filters, joins, sort, aggregate.
//! * [`plan`] — logical plans, the planner, and a rule-based optimizer
//!   (predicate pushdown, index selection, greedy join ordering).
//! * [`quel`] — a QUEL-like query language (`RANGE OF`, `RETRIEVE`,
//!   `APPEND`, `REPLACE`, `DELETE`), the era-appropriate choice.
//! * [`stats`] — table statistics feeding the optimizer.
//!
//! ## Quick tour
//!
//! ```
//! use wow_rel::db::Database;
//! use wow_rel::value::Value;
//!
//! let mut db = Database::in_memory();
//! db.run("CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)").unwrap();
//! db.run("APPEND TO emp (name = \"alice\", dept = \"toy\", salary = 120)").unwrap();
//! db.run("APPEND TO emp (name = \"bob\", dept = \"shoe\", salary = 90)").unwrap();
//! let rows = db.run("RANGE OF e IS emp RETRIEVE (e.name) WHERE e.salary > 100").unwrap();
//! assert_eq!(rows.tuples[0].values[0], Value::text("alice"));
//! ```

pub mod catalog;
pub mod db;
pub mod delta;
pub mod dml;
pub mod durable;
pub mod error;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod quel;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod types;
pub mod value;

pub use error::{RelError, RelResult};
