//! Durable worlds: checkpoint + WAL recovery for a [`Database`].
//!
//! A durable database lives in a directory holding two files:
//!
//! * `world.ckpt` — a [`FileStore`] whose pages are a verbatim image of the
//!   database's page store at checkpoint time, plus a metadata blob carrying
//!   the serialized catalog, range declarations, transaction counter, free
//!   page list, and the checkpoint's *epoch*.
//! * `world.wal` — the write-ahead log of everything since that checkpoint,
//!   stamped with the same epoch (see [`Wal::epoch`]).
//!
//! [`Database::checkpoint_durable`] writes a new snapshot to a temp file,
//! fsyncs it, atomically renames it over `world.ckpt`, and only then resets
//! the WAL to the new epoch. Every crash window is covered:
//!
//! * crash before the rename → the old snapshot + old WAL are intact;
//! * crash after the rename but before the WAL reset → the WAL's epoch is
//!   *older* than the snapshot's, so recovery discards it (nothing ran
//!   between the two steps — checkpointing holds `&mut self`);
//! * crash mid-WAL-append → the torn tail is dropped by frame parsing.
//!
//! [`Database::open_durable`] loads the snapshot (if any), replays the
//! committed tail of a matching-epoch WAL, and reports what it did in a
//! [`RecoveryReport`].
//!
//! ## Replay is by content, not by rid
//!
//! Logged rids are hints, not addresses: an `ABORT` undoes a delete by
//! re-inserting at a *fresh* rid, so a later committed operation can name a
//! rid that replay cannot reproduce. Replay therefore resolves each
//! update/delete target by rid hint first, verifies the stored bytes match
//! the logged before-image, and falls back to scanning the table for a row
//! with those exact bytes. State equivalence is at the multiset-of-rows
//! level, which is all the relational layer above can observe.

use crate::catalog::{IndexKind, TableId};
use crate::db::{AnyStore, Database, DEFAULT_POOL_FRAMES};
use crate::error::{RelError, RelResult};
use crate::schema::{Column, Schema};
use crate::tuple::Tuple;
use crate::types::DataType;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use wow_storage::heap::HeapFile;
use wow_storage::page::{Page, PageId};
use wow_storage::recovery::{analyze, RecoveryReport};
use wow_storage::store::{FileStore, MemStore, PageStore};
use wow_storage::wal::{LogRecord, SyncPolicy, Wal};
use wow_storage::{Rid, StorageError};

/// Snapshot file name inside a durable world directory.
pub const CKPT_FILE: &str = "world.ckpt";
/// WAL file name inside a durable world directory.
pub const WAL_FILE: &str = "world.wal";
/// Default auto-checkpoint cadence (commits between checkpoints).
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1024;

const SNAP_MAGIC: u32 = 0x574F_5753; // "WOWS"
const SNAP_VERSION: u32 = 1;

/// Durability bookkeeping attached to a [`Database`] opened with
/// [`Database::open_durable`].
pub(crate) struct DurableState {
    pub dir: PathBuf,
    /// Commits between automatic checkpoints (0 disables them).
    pub checkpoint_every: u64,
    /// Commits since the last checkpoint.
    pub commits_since: u64,
    /// Checkpoints taken through this handle.
    pub checkpoints: u64,
    /// What recovery did when this database was opened.
    pub recovery: RecoveryReport,
}

/// Resolve the auto-checkpoint cadence: `WOW_CKPT_EVERY` overrides the
/// default (`0` disables automatic checkpoints).
pub fn resolve_checkpoint_every(default: u64) -> u64 {
    match std::env::var("WOW_CKPT_EVERY") {
        Ok(v) => v.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

// ---------------------------------------------------------------------------
// Byte codec (snapshot metadata and DDL payloads)
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

const CORRUPT: RelError = RelError::Storage(StorageError::Corrupt("truncated durable metadata"));

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    fn bytes(&mut self, n: usize) -> RelResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(CORRUPT);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> RelResult<u8> {
        Ok(self.bytes(1)?[0])
    }
    fn u16(&mut self) -> RelResult<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> RelResult<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> RelResult<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> RelResult<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.bytes(n)?.to_vec())
            .map_err(|_| RelError::Storage(StorageError::Corrupt("non-utf8 durable metadata")))
    }
}

fn encode_schema(out: &mut Vec<u8>, schema: &Schema) {
    out.extend_from_slice(&(schema.len() as u16).to_le_bytes());
    for col in &schema.columns {
        put_str(out, &col.name);
        put_str(out, col.ty.keyword());
        out.push(col.nullable as u8);
    }
}

fn decode_schema(r: &mut Reader) -> RelResult<Schema> {
    let n = r.u16()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let ty = DataType::from_keyword(&r.str()?).ok_or(RelError::Storage(
            StorageError::Corrupt("unknown column type"),
        ))?;
        let nullable = r.u8()? != 0;
        cols.push(if nullable {
            Column::new(name, ty)
        } else {
            Column::not_null(name, ty)
        });
    }
    Ok(Schema::new(cols))
}

fn encode_positions(out: &mut Vec<u8>, cols: &[usize]) {
    out.extend_from_slice(&(cols.len() as u16).to_le_bytes());
    for &c in cols {
        out.extend_from_slice(&(c as u16).to_le_bytes());
    }
}

fn decode_positions(r: &mut Reader) -> RelResult<Vec<usize>> {
    let n = r.u16()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u16()? as usize);
    }
    Ok(out)
}

fn kind_byte(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::BTree => 0,
        IndexKind::Hash => 1,
    }
}

fn byte_kind(b: u8) -> RelResult<IndexKind> {
    match b {
        0 => Ok(IndexKind::BTree),
        1 => Ok(IndexKind::Hash),
        _ => Err(RelError::Storage(StorageError::Corrupt(
            "unknown index kind",
        ))),
    }
}

// -- DDL payloads (carried opaquely in `LogRecord::Ddl`) --------------------

const DDL_CREATE_TABLE: u8 = 1;
const DDL_CREATE_INDEX: u8 = 2;
const DDL_DROP_TABLE: u8 = 3;
const DDL_DROP_INDEX: u8 = 4;

pub(crate) fn encode_create_table(
    id: TableId,
    name: &str,
    schema: &Schema,
    key: &[usize],
) -> Vec<u8> {
    let mut out = vec![DDL_CREATE_TABLE];
    out.extend_from_slice(&id.to_le_bytes());
    put_str(&mut out, name);
    encode_schema(&mut out, schema);
    encode_positions(&mut out, key);
    out
}

pub(crate) fn encode_create_index(
    name: &str,
    table: &str,
    columns: &[usize],
    kind: IndexKind,
    unique: bool,
) -> Vec<u8> {
    let mut out = vec![DDL_CREATE_INDEX];
    put_str(&mut out, name);
    put_str(&mut out, table);
    encode_positions(&mut out, columns);
    out.push(kind_byte(kind));
    out.push(unique as u8);
    out
}

pub(crate) fn encode_drop_table(name: &str) -> Vec<u8> {
    let mut out = vec![DDL_DROP_TABLE];
    put_str(&mut out, name);
    out
}

pub(crate) fn encode_drop_index(name: &str) -> Vec<u8> {
    let mut out = vec![DDL_DROP_INDEX];
    put_str(&mut out, name);
    out
}

// ---------------------------------------------------------------------------
// Snapshot metadata
// ---------------------------------------------------------------------------

struct SnapTable {
    id: TableId,
    name: String,
    schema: Schema,
    key: Vec<usize>,
    heap_meta: u64,
}

struct SnapIndex {
    name: String,
    table: TableId,
    columns: Vec<usize>,
    kind: IndexKind,
    unique: bool,
    meta: u64,
}

struct Snapshot {
    epoch: u64,
    txn_next: u64,
    next_table_id: TableId,
    page_count: u64,
    free: Vec<u64>,
    tables: Vec<SnapTable>,
    indexes: Vec<SnapIndex>,
    ranges: Vec<(String, String)>,
}

impl Snapshot {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAP_MAGIC.to_le_bytes());
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.txn_next.to_le_bytes());
        out.extend_from_slice(&self.next_table_id.to_le_bytes());
        out.extend_from_slice(&self.page_count.to_le_bytes());
        out.extend_from_slice(&(self.free.len() as u32).to_le_bytes());
        for &id in &self.free {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for t in &self.tables {
            out.extend_from_slice(&t.id.to_le_bytes());
            put_str(&mut out, &t.name);
            encode_schema(&mut out, &t.schema);
            encode_positions(&mut out, &t.key);
            out.extend_from_slice(&t.heap_meta.to_le_bytes());
        }
        out.extend_from_slice(&(self.indexes.len() as u32).to_le_bytes());
        for i in &self.indexes {
            put_str(&mut out, &i.name);
            out.extend_from_slice(&i.table.to_le_bytes());
            encode_positions(&mut out, &i.columns);
            out.push(kind_byte(i.kind));
            out.push(i.unique as u8);
            out.extend_from_slice(&i.meta.to_le_bytes());
        }
        out.extend_from_slice(&(self.ranges.len() as u32).to_le_bytes());
        for (var, table) in &self.ranges {
            put_str(&mut out, var);
            put_str(&mut out, table);
        }
        out
    }

    fn decode(buf: &[u8]) -> RelResult<Snapshot> {
        let mut r = Reader::new(buf);
        if r.u32()? != SNAP_MAGIC {
            return Err(RelError::Storage(StorageError::Corrupt(
                "bad snapshot magic",
            )));
        }
        if r.u32()? != SNAP_VERSION {
            return Err(RelError::Storage(StorageError::Corrupt(
                "unsupported snapshot version",
            )));
        }
        let epoch = r.u64()?;
        let txn_next = r.u64()?;
        let next_table_id = r.u32()?;
        let page_count = r.u64()?;
        let nfree = r.u32()? as usize;
        let mut free = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            free.push(r.u64()?);
        }
        let ntables = r.u32()? as usize;
        let mut tables = Vec::with_capacity(ntables);
        for _ in 0..ntables {
            let id = r.u32()?;
            let name = r.str()?;
            let schema = decode_schema(&mut r)?;
            let key = decode_positions(&mut r)?;
            let heap_meta = r.u64()?;
            tables.push(SnapTable {
                id,
                name,
                schema,
                key,
                heap_meta,
            });
        }
        let nindexes = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(nindexes);
        for _ in 0..nindexes {
            let name = r.str()?;
            let table = r.u32()?;
            let columns = decode_positions(&mut r)?;
            let kind = byte_kind(r.u8()?)?;
            let unique = r.u8()? != 0;
            let meta = r.u64()?;
            indexes.push(SnapIndex {
                name,
                table,
                columns,
                kind,
                unique,
                meta,
            });
        }
        let nranges = r.u32()? as usize;
        let mut ranges = Vec::with_capacity(nranges);
        for _ in 0..nranges {
            let var = r.str()?;
            let table = r.str()?;
            ranges.push((var, table));
        }
        Ok(Snapshot {
            epoch,
            txn_next,
            next_table_id,
            page_count,
            free,
            tables,
            indexes,
            ranges,
        })
    }
}

fn io_err(e: std::io::Error) -> RelError {
    RelError::Storage(e.into())
}

// ---------------------------------------------------------------------------
// Database: durable open / checkpoint / replay
// ---------------------------------------------------------------------------

impl Database {
    /// Open (or create) a durable database in `dir`, running crash recovery:
    /// load the last checkpoint, replay the committed tail of the WAL, and
    /// attach the WAL for future writes. The fsync policy honors the
    /// `WOW_FSYNC` environment override; the auto-checkpoint cadence honors
    /// `WOW_CKPT_EVERY`.
    pub fn open_durable(dir: &Path) -> RelResult<Database> {
        let mut span = wow_obs::span(wow_obs::Op::Recovery);
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let ckpt_path = dir.join(CKPT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let (mut db, snap_epoch) = if ckpt_path.exists() {
            let mut fs = FileStore::open(&ckpt_path)?;
            let meta = fs
                .get_meta()?
                .ok_or(RelError::Storage(StorageError::Corrupt(
                    "checkpoint has no metadata blob",
                )))?;
            let snap = Snapshot::decode(&meta)?;
            let mut db = Self::restore_snapshot(&mut fs, &snap)?;
            db.txn.next = snap.txn_next;
            (db, snap.epoch)
        } else {
            (Database::in_memory(), 0)
        };

        let mut wal = Wal::open(&wal_path)?;
        let mut recovery = RecoveryReport::default();
        if wal.epoch() == snap_epoch {
            let records: Vec<LogRecord> = wal.read_all()?.into_iter().map(|(_, r)| r).collect();
            recovery = db.apply_committed(&records)?;
            let max_txn = records.iter().map(|r| r.txn()).max().unwrap_or(0);
            db.txn.next = db.txn.next.max(max_txn + 1);
        } else {
            // A crash between checkpoint-rename and WAL-reset leaves a log
            // from the *previous* epoch; everything in it is already in the
            // snapshot. Discard and restamp.
            wal.reset(snap_epoch)?;
        }
        wal.set_sync_policy(SyncPolicy::resolve(SyncPolicy::Commit));
        db.wal = Some(wal);
        span.arg(recovery.replayed_ops);
        db.durable = Some(DurableState {
            dir: dir.to_path_buf(),
            checkpoint_every: resolve_checkpoint_every(DEFAULT_CHECKPOINT_EVERY),
            commits_since: 0,
            checkpoints: 0,
            recovery,
        });
        Ok(db)
    }

    /// Rebuild an in-memory database from a checkpoint's page images and
    /// serialized catalog.
    fn restore_snapshot(fs: &mut FileStore, snap: &Snapshot) -> RelResult<Database> {
        let free: HashSet<u64> = snap.free.iter().copied().collect();
        let mut pages: Vec<Option<Page>> = Vec::with_capacity(snap.page_count as usize);
        for id in 0..snap.page_count {
            if free.contains(&id) {
                pages.push(None);
            } else {
                let mut p = Page::zeroed();
                fs.read(PageId(id), &mut p)?;
                pages.push(Some(p));
            }
        }
        let mut db = Database::with_store(
            AnyStore::Mem(MemStore::from_parts(pages)),
            DEFAULT_POOL_FRAMES,
        );
        for t in &snap.tables {
            let heap = HeapFile::open(&db.pool, PageId(t.heap_meta))?;
            let rows = heap.len();
            let id = db.catalog.add_table_with_id(
                &t.name,
                t.id,
                t.schema.clone(),
                PageId(t.heap_meta),
                t.key.clone(),
            )?;
            db.heaps.insert(id, heap);
            db.stats.entry(id).rows = rows;
        }
        db.catalog.set_next_table_id(snap.next_table_id);
        for i in &snap.indexes {
            let tname = db.catalog.table_by_id(i.table)?.name.clone();
            db.catalog.add_index(
                &i.name,
                &tname,
                i.columns.clone(),
                i.kind,
                i.unique,
                PageId(i.meta),
            )?;
            db.open_index_handle(&i.name, i.kind, PageId(i.meta))?;
        }
        for (var, table) in &snap.ranges {
            db.ranges.insert(var.clone(), table.clone());
        }
        Ok(db)
    }

    /// Write a durable checkpoint: snapshot every page plus the serialized
    /// catalog into `world.ckpt` (atomically, via a temp file + rename), then
    /// reset the WAL to the next epoch. Refuses to run inside an open
    /// transaction — a snapshot must capture a transaction boundary.
    pub fn checkpoint_durable(&mut self) -> RelResult<()> {
        let dir = match &self.durable {
            Some(d) => d.dir.clone(),
            None => return Err(RelError::Txn("database was not opened durable")),
        };
        if self.txn.current.is_some() {
            return Err(RelError::Txn("cannot checkpoint inside a transaction"));
        }
        let mut span = wow_obs::span(wow_obs::Op::Checkpoint);
        let epoch = self.wal.as_ref().map(|w| w.epoch()).unwrap_or(0) + 1;
        self.pool.flush_all()?;

        let tmp = dir.join("world.ckpt.tmp");
        let _ = std::fs::remove_file(&tmp);
        {
            let mut target = FileStore::open(&tmp)?;
            let mut free: Vec<u64> = Vec::new();
            let page_count = self.pool.with_store(|s| -> RelResult<u64> {
                let n = s.page_count();
                let mut buf = Page::zeroed();
                for id in 0..n {
                    let tid = target.allocate()?;
                    debug_assert_eq!(tid.0, id, "snapshot page ids must align");
                    match s.read(PageId(id), &mut buf) {
                        Ok(()) => target.write(tid, &buf)?,
                        Err(StorageError::PageNotFound(_)) => free.push(id),
                        Err(e) => return Err(e.into()),
                    }
                }
                Ok(n)
            })?;
            let snap = self.build_snapshot(epoch, page_count, free);
            target.set_meta(&snap.encode())?;
            target.sync()?;
        }
        std::fs::rename(&tmp, dir.join(CKPT_FILE)).map_err(io_err)?;
        if let Some(wal) = &mut self.wal {
            wal.reset(epoch)?;
        }
        let d = self.durable.as_mut().expect("checked above");
        d.checkpoints += 1;
        d.commits_since = 0;
        span.arg(page_count_arg(&self.pool));
        Ok(())
    }

    fn build_snapshot(&self, epoch: u64, page_count: u64, free: Vec<u64>) -> Snapshot {
        let mut tables = Vec::new();
        let mut indexes = Vec::new();
        for name in self.catalog.table_names() {
            let t = self.catalog.table(&name).expect("listed table exists");
            tables.push(SnapTable {
                id: t.id,
                name: t.name.clone(),
                schema: t.schema.clone(),
                key: t.key.clone(),
                heap_meta: t.heap_meta.0,
            });
            for idx_name in &t.indexes {
                let i = self.catalog.index(idx_name).expect("listed index exists");
                indexes.push(SnapIndex {
                    name: i.name.clone(),
                    table: i.table,
                    columns: i.columns.clone(),
                    kind: i.kind,
                    unique: i.unique,
                    meta: i.meta.0,
                });
            }
        }
        Snapshot {
            epoch,
            txn_next: self.txn.next,
            next_table_id: self.catalog.next_table_id(),
            page_count,
            free,
            tables,
            indexes,
            ranges: self
                .ranges
                .iter()
                .map(|(v, t)| (v.clone(), t.clone()))
                .collect(),
        }
    }

    /// Apply the committed operations of `records`, in log order, to this
    /// database. DML targets are resolved by rid hint with a content
    /// fallback (see the module docs); DDL payloads are decoded and applied
    /// through the non-logging internal paths. Returns the analysis report
    /// with replay counters filled in.
    pub(crate) fn apply_committed(&mut self, records: &[LogRecord]) -> RelResult<RecoveryReport> {
        let mut report = analyze(records);
        let committed: HashSet<u64> = report.committed.iter().copied().collect();
        // Rid hints: logged rid -> rid in this database.
        let mut rid_map: std::collections::HashMap<(TableId, Rid), Rid> =
            std::collections::HashMap::new();
        for rec in records {
            if !committed.contains(&rec.txn()) {
                continue;
            }
            match rec {
                LogRecord::Insert {
                    table, rid, bytes, ..
                } => {
                    let tname = self.catalog.table_by_id(*table)?.name.clone();
                    let tuple = Tuple::decode(bytes)?;
                    let new_rid = self.insert(&tname, tuple.values)?;
                    rid_map.insert((*table, *rid), new_rid);
                    report.replayed_ops += 1;
                }
                LogRecord::Update {
                    table,
                    rid,
                    old,
                    new,
                    ..
                } => {
                    let hint = rid_map.get(&(*table, *rid)).copied().unwrap_or(*rid);
                    match self.resolve_replay_rid(*table, hint, old)? {
                        Some(target) => {
                            let tname = self.catalog.table_by_id(*table)?.name.clone();
                            let tuple = Tuple::decode(new)?;
                            self.update_rid(&tname, target, tuple.values)?;
                            rid_map.insert((*table, *rid), target);
                            report.replayed_ops += 1;
                        }
                        None => report.skipped_ops += 1,
                    }
                }
                LogRecord::Delete {
                    table, rid, old, ..
                } => {
                    let hint = rid_map.get(&(*table, *rid)).copied().unwrap_or(*rid);
                    match self.resolve_replay_rid(*table, hint, old)? {
                        Some(target) => {
                            let tname = self.catalog.table_by_id(*table)?.name.clone();
                            self.delete_rid(&tname, target)?;
                            rid_map.remove(&(*table, *rid));
                            report.replayed_ops += 1;
                        }
                        None => report.skipped_ops += 1,
                    }
                }
                LogRecord::Ddl { bytes, .. } => {
                    self.apply_ddl(bytes)?;
                    report.replayed_ops += 1;
                }
                _ => {}
            }
        }
        Ok(report)
    }

    /// Find the rid currently holding the exact bytes `old` in `table`:
    /// the hint if it matches, else a content scan. `None` means the row is
    /// gone (a replay no-op, counted as skipped by the caller).
    fn resolve_replay_rid(
        &mut self,
        table: TableId,
        hint: Rid,
        old: &[u8],
    ) -> RelResult<Option<Rid>> {
        if let Ok(Some(t)) = self.get_row(table, hint) {
            if t.encode() == old {
                return Ok(Some(hint));
            }
        }
        let heap = self
            .heaps
            .get(&table)
            .ok_or_else(|| RelError::NoSuchTable(format!("#{table}")))?;
        let mut found = None;
        heap.scan(&self.pool, |rid, bytes| {
            if found.is_none() && bytes == old {
                found = Some(rid);
            }
        })?;
        Ok(found)
    }

    /// Decode and apply one logged DDL payload.
    fn apply_ddl(&mut self, bytes: &[u8]) -> RelResult<()> {
        let mut r = Reader::new(bytes);
        match r.u8()? {
            DDL_CREATE_TABLE => {
                let id = r.u32()?;
                let name = r.str()?;
                let schema = decode_schema(&mut r)?;
                let key = decode_positions(&mut r)?;
                self.create_table_at(&name, id, schema, key)?;
            }
            DDL_CREATE_INDEX => {
                let name = r.str()?;
                let table = r.str()?;
                let columns = decode_positions(&mut r)?;
                let kind = byte_kind(r.u8()?)?;
                let unique = r.u8()? != 0;
                self.create_index_internal(&name, &table, columns, kind, unique)?;
            }
            DDL_DROP_TABLE => {
                let name = r.str()?;
                self.drop_table(&name)?;
            }
            DDL_DROP_INDEX => {
                let name = r.str()?;
                self.drop_index(&name)?;
            }
            _ => {
                return Err(RelError::Storage(StorageError::Corrupt(
                    "unknown ddl payload",
                )))
            }
        }
        Ok(())
    }

    /// Count one committed transaction toward the auto-checkpoint cadence,
    /// taking a checkpoint when it is reached.
    pub(crate) fn note_commit(&mut self) -> RelResult<()> {
        let due = match &mut self.durable {
            Some(d) if d.checkpoint_every > 0 => {
                d.commits_since += 1;
                d.commits_since >= d.checkpoint_every
            }
            _ => false,
        };
        if due && self.txn.current.is_none() {
            self.checkpoint_durable()?;
        }
        Ok(())
    }

    /// What recovery did when this database was opened durable (`None` for
    /// non-durable databases).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().map(|d| &d.recovery)
    }

    /// Checkpoints taken through this handle.
    pub fn checkpoints_taken(&self) -> u64 {
        self.durable.as_ref().map(|d| d.checkpoints).unwrap_or(0)
    }

    /// The durable world directory, if this database was opened durable.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    /// Set the auto-checkpoint cadence (commits between checkpoints; 0
    /// disables). No-op on non-durable databases.
    pub fn set_checkpoint_every(&mut self, every: u64) {
        if let Some(d) = &mut self.durable {
            d.checkpoint_every = every;
        }
    }
}

fn page_count_arg(pool: &std::sync::Arc<wow_storage::buffer::BufferPool<AnyStore>>) -> u64 {
    pool.with_store(|s| s.page_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn tmp_world(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wow-durable-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn emp_schema() -> Schema {
        Schema::new(vec![
            Column::not_null("name", DataType::Text),
            Column::new("salary", DataType::Int),
        ])
    }

    fn row(name: &str, salary: i64) -> Vec<Value> {
        vec![Value::text(name), Value::Int(salary)]
    }

    fn sorted_rows(db: &mut Database, table: &str) -> Vec<Vec<Value>> {
        let id = db.catalog().table(table).unwrap().id;
        let mut rows: Vec<Vec<Value>> = db
            .scan_table_raw(id)
            .unwrap()
            .into_iter()
            .map(|(_, t)| t.values)
            .collect();
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    #[test]
    fn wal_only_recovery_includes_ddl() {
        let dir = tmp_world("wal-only");
        {
            let mut db = Database::open_durable(&dir).unwrap();
            db.create_table("emp", emp_schema(), &["name"]).unwrap();
            db.insert("emp", row("alice", 100)).unwrap();
            db.insert("emp", row("bob", 90)).unwrap();
            // Uncommitted transaction must not survive.
            db.begin().unwrap();
            db.insert("emp", row("ghost", 1)).unwrap();
            // "Crash": drop without commit.
        }
        let mut db = Database::open_durable(&dir).unwrap();
        let report = db.recovery_report().unwrap().clone();
        assert_eq!(report.in_flight.len(), 1, "ghost txn seen but skipped");
        assert_eq!(
            sorted_rows(&mut db, "emp"),
            vec![row("alice", 100), row("bob", 90)]
        );
        // The pk index came back too.
        assert_eq!(
            db.index_lookup("pk_emp", &[Value::text("bob")])
                .unwrap()
                .len(),
            1
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_plus_tail_round_trips() {
        let dir = tmp_world("ckpt-tail");
        {
            let mut db = Database::open_durable(&dir).unwrap();
            db.create_table("emp", emp_schema(), &["name"]).unwrap();
            db.insert("emp", row("alice", 100)).unwrap();
            db.checkpoint_durable().unwrap();
            assert_eq!(db.wal().unwrap().epoch(), 1);
            // Tail after the checkpoint.
            db.insert("emp", row("bob", 90)).unwrap();
            let rid = db.insert("emp", row("carol", 80)).unwrap();
            db.update_rid("emp", rid, row("carol", 85)).unwrap();
        }
        let mut db = Database::open_durable(&dir).unwrap();
        let report = db.recovery_report().unwrap().clone();
        assert!(report.replayed_ops >= 3, "tail replayed: {report:?}");
        assert_eq!(
            sorted_rows(&mut db, "emp"),
            vec![row("alice", 100), row("bob", 90), row("carol", 85)]
        );
        // Writes keep working after recovery.
        db.insert("emp", row("dave", 70)).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_epoch_wal_is_discarded() {
        let dir = tmp_world("stale-wal");
        {
            let mut db = Database::open_durable(&dir).unwrap();
            db.create_table("emp", emp_schema(), &["name"]).unwrap();
            db.insert("emp", row("alice", 100)).unwrap();
            db.checkpoint_durable().unwrap();
        }
        // Simulate a crash after checkpoint-rename but before WAL reset: the
        // on-disk log claims epoch 0 while the snapshot is epoch 1. Its
        // contents (a committed insert) are already *in* the snapshot;
        // replaying them would double the row.
        let frames = {
            let mut w = Wal::in_memory();
            w.append(&LogRecord::Insert {
                txn: 7,
                table: 0,
                rid: Rid::new(PageId(1), 0),
                bytes: Tuple::new(row("alice", 100)).encode(),
            })
            .unwrap();
            w.append(&LogRecord::Commit { txn: 7 }).unwrap();
            w.raw().unwrap().to_vec()
        };
        Wal::write_image(&dir.join(WAL_FILE), 0, &frames).unwrap();
        let mut db = Database::open_durable(&dir).unwrap();
        assert_eq!(db.recovery_report().unwrap().replayed_ops, 0);
        assert_eq!(sorted_rows(&mut db, "emp"), vec![row("alice", 100)]);
        assert_eq!(
            db.wal().unwrap().epoch(),
            1,
            "log restamped to the snapshot epoch"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_undo_then_committed_delete_round_trips() {
        // An aborted delete re-inserts its row (possibly at a fresh rid);
        // the committed delete that follows must still replay correctly.
        let dir = tmp_world("abort-then-delete");
        {
            let mut db = Database::open_durable(&dir).unwrap();
            db.create_table("emp", emp_schema(), &["name"]).unwrap();
            let a = db.insert("emp", row("alice", 100)).unwrap();
            let b = db.insert("emp", row("bob", 90)).unwrap();
            db.begin().unwrap();
            db.delete_rid("emp", a).unwrap();
            db.delete_rid("emp", b).unwrap();
            db.abort().unwrap();
            let rows = db
                .scan_table_raw(db.catalog().table("emp").unwrap().id)
                .unwrap();
            let cur_a = rows
                .iter()
                .find(|(_, t)| t.values[0] == Value::text("alice"))
                .map(|(r, _)| *r)
                .unwrap();
            db.delete_rid("emp", cur_a).unwrap();
        }
        let mut db = Database::open_durable(&dir).unwrap();
        assert_eq!(sorted_rows(&mut db, "emp"), vec![row("bob", 90)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_rid_hint_falls_back_to_content() {
        // Synthetic log whose update/delete rids point nowhere useful: the
        // before-image content scan must find the real rows.
        let mut db = Database::in_memory();
        db.create_table("emp", emp_schema(), &["name"]).unwrap();
        let tid = db.catalog().table("emp").unwrap().id;
        let bogus = Rid::new(PageId(999), 7);
        let records = vec![
            LogRecord::Insert {
                txn: 1,
                table: tid,
                rid: Rid::new(PageId(500), 3),
                bytes: Tuple::new(row("alice", 100)).encode(),
            },
            LogRecord::Insert {
                txn: 1,
                table: tid,
                rid: Rid::new(PageId(500), 4),
                bytes: Tuple::new(row("bob", 90)).encode(),
            },
            LogRecord::Commit { txn: 1 },
            LogRecord::Update {
                txn: 2,
                table: tid,
                rid: bogus,
                old: Tuple::new(row("alice", 100)).encode(),
                new: Tuple::new(row("alice", 120)).encode(),
            },
            LogRecord::Commit { txn: 2 },
            LogRecord::Delete {
                txn: 3,
                table: tid,
                rid: bogus,
                old: Tuple::new(row("bob", 90)).encode(),
            },
            LogRecord::Commit { txn: 3 },
        ];
        let report = db.apply_committed(&records).unwrap();
        assert_eq!(report.replayed_ops, 4);
        assert_eq!(report.skipped_ops, 0);
        assert_eq!(sorted_rows(&mut db, "emp"), vec![row("alice", 120)]);
    }

    #[test]
    fn drop_table_and_index_replay() {
        let dir = tmp_world("ddl-drop");
        {
            let mut db = Database::open_durable(&dir).unwrap();
            db.create_table("keep", emp_schema(), &["name"]).unwrap();
            db.create_table("gone", emp_schema(), &["name"]).unwrap();
            db.create_index("by_sal", "keep", "salary", IndexKind::BTree, false)
                .unwrap();
            db.insert("keep", row("alice", 100)).unwrap();
            db.drop_index("by_sal").unwrap();
            db.drop_table("gone").unwrap();
        }
        let mut db = Database::open_durable(&dir).unwrap();
        assert!(db.catalog().table("gone").is_err());
        assert!(db.catalog().index("by_sal").is_err());
        assert_eq!(sorted_rows(&mut db, "keep"), vec![row("alice", 100)]);
        // Table ids stay retired: a new table never reuses "gone"'s id.
        let gone_id = 1; // second table created above
        let new_id = db.create_table("fresh", emp_schema(), &[]).unwrap();
        assert!(new_id > gone_id);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sys_tables_are_not_logged() {
        let mut db = Database::in_memory().with_wal();
        db.create_table("__sys_gauge", emp_schema(), &["name"])
            .unwrap();
        db.insert("__sys_gauge", row("hits", 3)).unwrap();
        assert_eq!(db.wal().unwrap().appended(), 0);
        // User tables still log.
        db.create_table("emp", emp_schema(), &["name"]).unwrap();
        db.insert("emp", row("alice", 1)).unwrap();
        assert!(db.wal().unwrap().appended() >= 3, "ddl + insert + commit");
    }

    #[test]
    fn auto_checkpoint_fires_on_cadence() {
        let dir = tmp_world("auto-ckpt");
        {
            let mut db = Database::open_durable(&dir).unwrap();
            db.create_table("emp", emp_schema(), &["name"]).unwrap();
            db.set_checkpoint_every(2);
            db.insert("emp", row("a", 1)).unwrap();
            assert_eq!(db.checkpoints_taken(), 0);
            db.insert("emp", row("b", 2)).unwrap();
            assert_eq!(db.checkpoints_taken(), 1);
            assert_eq!(db.wal().unwrap().epoch(), 1);
            db.insert("emp", row("c", 3)).unwrap();
        }
        let mut db = Database::open_durable(&dir).unwrap();
        assert_eq!(
            sorted_rows(&mut db, "emp"),
            vec![row("a", 1), row("b", 2), row("c", 3)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ranges_and_txn_counter_survive_checkpoint() {
        let dir = tmp_world("ranges");
        let next_before;
        {
            let mut db = Database::open_durable(&dir).unwrap();
            db.create_table("emp", emp_schema(), &["name"]).unwrap();
            db.declare_range("e", "emp").unwrap();
            db.insert("emp", row("alice", 10)).unwrap();
            db.checkpoint_durable().unwrap();
            next_before = db.txn_next_for_tests();
        }
        let db = Database::open_durable(&dir).unwrap();
        assert_eq!(db.range_table("e").unwrap(), "emp");
        assert!(db.txn_next_for_tests() >= next_before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_refuses_open_transaction() {
        let dir = tmp_world("ckpt-txn");
        let mut db = Database::open_durable(&dir).unwrap();
        db.create_table("emp", emp_schema(), &[]).unwrap();
        db.begin().unwrap();
        assert!(db.checkpoint_durable().is_err());
        db.commit().unwrap();
        db.checkpoint_durable().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
