//! Errors produced by the relational engine.

use std::fmt;
use wow_storage::StorageError;

/// Result alias for the relational engine.
pub type RelResult<T> = Result<T, RelError>;

/// Errors produced while planning or executing statements.
#[derive(Debug)]
pub enum RelError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// A named table does not exist.
    NoSuchTable(String),
    /// A named column does not exist in the referenced relation.
    NoSuchColumn(String),
    /// A named range variable was not declared with `RANGE OF`.
    NoSuchRange(String),
    /// A named index does not exist.
    NoSuchIndex(String),
    /// A table/index with this name already exists.
    AlreadyExists(String),
    /// A value's type did not match the column or operator expectation.
    TypeMismatch { expected: String, got: String },
    /// NULL supplied for a NOT NULL column.
    NullViolation(String),
    /// A duplicate primary-key / unique-index value.
    UniqueViolation(String),
    /// Syntax error in a QUEL statement.
    Parse { pos: usize, message: String },
    /// Statement is valid but unsupported (documented dialect limits).
    Unsupported(String),
    /// Division by zero or similar runtime arithmetic failure.
    Arithmetic(&'static str),
    /// Transaction misuse (commit without begin, nested begin, ...).
    Txn(&'static str),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Storage(e) => write!(f, "storage: {e}"),
            RelError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            RelError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            RelError::NoSuchRange(r) => write!(f, "no such range variable: {r}"),
            RelError::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            RelError::AlreadyExists(n) => write!(f, "already exists: {n}"),
            RelError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            RelError::NullViolation(c) => write!(f, "column {c} may not be NULL"),
            RelError::UniqueViolation(k) => write!(f, "duplicate key: {k}"),
            RelError::Parse { pos, message } => {
                write!(f, "parse error at byte {pos}: {message}")
            }
            RelError::Unsupported(what) => write!(f, "unsupported: {what}"),
            RelError::Arithmetic(what) => write!(f, "arithmetic error: {what}"),
            RelError::Txn(what) => write!(f, "transaction error: {what}"),
        }
    }
}

impl std::error::Error for RelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RelError {
    fn from(e: StorageError) -> Self {
        RelError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            RelError::NoSuchTable("emp".into()).to_string(),
            "no such table: emp"
        );
        assert_eq!(
            RelError::TypeMismatch {
                expected: "INT".into(),
                got: "TEXT".into()
            }
            .to_string(),
            "type mismatch: expected INT, got TEXT"
        );
        assert!(RelError::Parse {
            pos: 7,
            message: "expected )".into()
        }
        .to_string()
        .contains("byte 7"));
    }

    #[test]
    fn storage_errors_convert() {
        let e: RelError = StorageError::DuplicateKey.into();
        assert!(matches!(e, RelError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
