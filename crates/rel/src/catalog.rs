//! The catalog: tables, indexes, and where they live in storage.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use std::collections::BTreeMap;
use wow_storage::PageId;

/// Identifier of a table (also used in WAL records).
pub type TableId = u32;

/// The kind of physical index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Ordered B+tree: supports equality, ranges, and ordered browsing.
    BTree,
    /// Hash index: equality only.
    Hash,
}

/// Catalog entry for an index.
#[derive(Debug, Clone)]
pub struct IndexInfo {
    /// Index name (unique across the database).
    pub name: String,
    /// Owning table.
    pub table: TableId,
    /// Indexed column positions (in table schema order).
    pub columns: Vec<usize>,
    /// Physical kind.
    pub kind: IndexKind,
    /// Whether the key must be unique.
    pub unique: bool,
    /// Root meta page of the index structure.
    pub meta: PageId,
}

/// Catalog entry for a table.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Table id (stable; used in the WAL).
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// Meta page of the heap file.
    pub heap_meta: PageId,
    /// Primary-key column positions (may be empty).
    pub key: Vec<usize>,
    /// Names of indexes on this table.
    pub indexes: Vec<String>,
}

/// The database catalog.
///
/// Held in memory and rebuilt by the embedding application on startup (the
/// WAL protects data, not DDL — the same division INGRES-era systems drew
/// between the schema file and the database).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, TableInfo>,
    ids: BTreeMap<TableId, String>,
    indexes: BTreeMap<String, IndexInfo>,
    next_id: TableId,
    /// Bumped on every change to the *table set* (create/drop). Layers that
    /// cache facts derived from table existence — e.g. the view dependency
    /// index — compare generations instead of re-deriving per use.
    generation: u64,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Generation of the table set; changes exactly when a table is
    /// created or dropped.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Register a table; returns its new id.
    pub fn add_table(
        &mut self,
        name: &str,
        schema: Schema,
        heap_meta: PageId,
        key: Vec<usize>,
    ) -> RelResult<TableId> {
        if self.tables.contains_key(name) {
            return Err(RelError::AlreadyExists(name.to_string()));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.tables.insert(
            name.to_string(),
            TableInfo {
                id,
                name: name.to_string(),
                schema,
                heap_meta,
                key,
                indexes: Vec::new(),
            },
        );
        self.ids.insert(id, name.to_string());
        self.generation += 1;
        Ok(id)
    }

    /// Register a table under an explicit id (checkpoint restore and WAL
    /// replay, where ids recorded on disk must be honored verbatim).
    /// Advances the id allocator past `id` so later tables never collide.
    pub fn add_table_with_id(
        &mut self,
        name: &str,
        id: TableId,
        schema: Schema,
        heap_meta: PageId,
        key: Vec<usize>,
    ) -> RelResult<TableId> {
        if self.tables.contains_key(name) || self.ids.contains_key(&id) {
            return Err(RelError::AlreadyExists(name.to_string()));
        }
        self.next_id = self.next_id.max(id + 1);
        self.tables.insert(
            name.to_string(),
            TableInfo {
                id,
                name: name.to_string(),
                schema,
                heap_meta,
                key,
                indexes: Vec::new(),
            },
        );
        self.ids.insert(id, name.to_string());
        self.generation += 1;
        Ok(id)
    }

    /// The next id the allocator would hand out (serialized by checkpoints
    /// so dropped-table ids stay retired across restarts).
    pub fn next_table_id(&self) -> TableId {
        self.next_id
    }

    /// Restore the id allocator's high-water mark (only ever moves forward).
    pub fn set_next_table_id(&mut self, next: TableId) {
        self.next_id = self.next_id.max(next);
    }

    /// Remove a table and all its index entries; returns the removed infos.
    pub fn remove_table(&mut self, name: &str) -> RelResult<(TableInfo, Vec<IndexInfo>)> {
        let info = self
            .tables
            .remove(name)
            .ok_or_else(|| RelError::NoSuchTable(name.to_string()))?;
        self.ids.remove(&info.id);
        let mut dropped = Vec::new();
        for idx_name in &info.indexes {
            if let Some(idx) = self.indexes.remove(idx_name) {
                dropped.push(idx);
            }
        }
        self.generation += 1;
        Ok((info, dropped))
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> RelResult<&TableInfo> {
        self.tables
            .get(name)
            .ok_or_else(|| RelError::NoSuchTable(name.to_string()))
    }

    /// Look up a table by id.
    pub fn table_by_id(&self, id: TableId) -> RelResult<&TableInfo> {
        self.ids
            .get(&id)
            .and_then(|n| self.tables.get(n))
            .ok_or_else(|| RelError::NoSuchTable(format!("#{id}")))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Register an index on a table.
    pub fn add_index(
        &mut self,
        name: &str,
        table: &str,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
        meta: PageId,
    ) -> RelResult<()> {
        if self.indexes.contains_key(name) {
            return Err(RelError::AlreadyExists(name.to_string()));
        }
        let table_id = self.table(table)?.id;
        self.indexes.insert(
            name.to_string(),
            IndexInfo {
                name: name.to_string(),
                table: table_id,
                columns,
                kind,
                unique,
                meta,
            },
        );
        self.tables
            .get_mut(table)
            .expect("checked above")
            .indexes
            .push(name.to_string());
        Ok(())
    }

    /// Remove an index entry.
    pub fn remove_index(&mut self, name: &str) -> RelResult<IndexInfo> {
        let info = self
            .indexes
            .remove(name)
            .ok_or_else(|| RelError::NoSuchIndex(name.to_string()))?;
        if let Some(tname) = self.ids.get(&info.table) {
            if let Some(t) = self.tables.get_mut(tname) {
                t.indexes.retain(|n| n != name);
            }
        }
        Ok(info)
    }

    /// Look up an index by name.
    pub fn index(&self, name: &str) -> RelResult<&IndexInfo> {
        self.indexes
            .get(name)
            .ok_or_else(|| RelError::NoSuchIndex(name.to_string()))
    }

    /// All indexes on a table.
    pub fn indexes_on(&self, table: TableId) -> Vec<&IndexInfo> {
        self.indexes.values().filter(|i| i.table == table).collect()
    }

    /// Find an index whose *first* key column is `column` (used for access-
    /// path selection). Prefers: unique over non-unique, then the requested
    /// kind, so equality probes hit the cheapest structure.
    pub fn index_on_column(
        &self,
        table: TableId,
        column: usize,
        prefer: Option<IndexKind>,
    ) -> Option<&IndexInfo> {
        let mut best: Option<&IndexInfo> = None;
        for idx in self.indexes.values() {
            if idx.table != table || idx.columns.first() != Some(&column) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let score = |i: &IndexInfo| (i.unique as u8, (Some(i.kind) == prefer) as u8);
                    score(idx) > score(b)
                }
            };
            if better {
                best = Some(idx);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Text),
        ])
    }

    #[test]
    fn add_and_lookup_table() {
        let mut c = Catalog::new();
        let id = c.add_table("emp", schema(), PageId(1), vec![0]).unwrap();
        assert_eq!(c.table("emp").unwrap().id, id);
        assert_eq!(c.table_by_id(id).unwrap().name, "emp");
        assert!(c.has_table("emp"));
        assert!(matches!(c.table("dept"), Err(RelError::NoSuchTable(_))));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.add_table("emp", schema(), PageId(1), vec![]).unwrap();
        assert!(matches!(
            c.add_table("emp", schema(), PageId(2), vec![]),
            Err(RelError::AlreadyExists(_))
        ));
    }

    #[test]
    fn index_lifecycle() {
        let mut c = Catalog::new();
        let tid = c.add_table("emp", schema(), PageId(1), vec![0]).unwrap();
        c.add_index(
            "emp_name",
            "emp",
            vec![1],
            IndexKind::BTree,
            false,
            PageId(5),
        )
        .unwrap();
        assert_eq!(c.index("emp_name").unwrap().table, tid);
        assert_eq!(c.indexes_on(tid).len(), 1);
        assert_eq!(c.table("emp").unwrap().indexes, vec!["emp_name"]);
        let dropped = c.remove_index("emp_name").unwrap();
        assert_eq!(dropped.meta, PageId(5));
        assert!(c.table("emp").unwrap().indexes.is_empty());
        assert!(c.index("emp_name").is_err());
    }

    #[test]
    fn remove_table_drops_its_indexes() {
        let mut c = Catalog::new();
        c.add_table("emp", schema(), PageId(1), vec![0]).unwrap();
        c.add_index("i1", "emp", vec![0], IndexKind::Hash, true, PageId(2))
            .unwrap();
        c.add_index("i2", "emp", vec![1], IndexKind::BTree, false, PageId(3))
            .unwrap();
        let (_, dropped) = c.remove_table("emp").unwrap();
        assert_eq!(dropped.len(), 2);
        assert!(c.index("i1").is_err());
    }

    #[test]
    fn index_on_column_prefers_unique_then_kind() {
        let mut c = Catalog::new();
        let tid = c.add_table("emp", schema(), PageId(1), vec![0]).unwrap();
        c.add_index("plain", "emp", vec![0], IndexKind::BTree, false, PageId(2))
            .unwrap();
        c.add_index("uniq", "emp", vec![0], IndexKind::Hash, true, PageId(3))
            .unwrap();
        let got = c.index_on_column(tid, 0, Some(IndexKind::BTree)).unwrap();
        assert_eq!(got.name, "uniq", "unique beats kind preference");
        assert!(c.index_on_column(tid, 1, None).is_none());
    }

    #[test]
    fn ids_are_distinct_and_stable() {
        let mut c = Catalog::new();
        let a = c.add_table("a", schema(), PageId(1), vec![]).unwrap();
        let b = c.add_table("b", schema(), PageId(2), vec![]).unwrap();
        assert_ne!(a, b);
        c.remove_table("a").unwrap();
        let d = c.add_table("d", schema(), PageId(3), vec![]).unwrap();
        assert_ne!(d, b, "ids are never reused");
    }
}
