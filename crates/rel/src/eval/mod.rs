//! Expression evaluation with SQL-style three-valued logic.
//!
//! Two evaluators share the kernels in this module:
//!
//! * [`eval`] — the row-at-a-time tree-walking interpreter (the reference
//!   semantics);
//! * [`compile`] — a one-time compiler to flat programs run over column
//!   batches with selection vectors (the vectorized hot path).

pub mod compile;

use crate::error::{RelError, RelResult};
use crate::expr::{glob_match, BinOp, Expr, UnOp};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;

/// Evaluate an expression against a tuple.
///
/// Comparisons involving NULL yield NULL; `AND`/`OR` follow Kleene logic
/// (`NULL AND false = false`, `NULL OR true = true`).
pub fn eval(expr: &Expr, tuple: &Tuple) -> RelResult<Value> {
    match expr {
        Expr::Column(i) => tuple
            .values
            .get(*i)
            .cloned()
            .ok_or_else(|| RelError::NoSuchColumn(format!("#{i}"))),
        Expr::ColumnRef(n) => Err(RelError::NoSuchColumn(format!("unresolved: {n}"))),
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, left, right } => {
            let l = eval(left, tuple)?;
            // Short-circuit AND/OR before evaluating the right side.
            match op {
                BinOp::And => {
                    return match truth(&l) {
                        Some(false) => Ok(Value::Bool(false)),
                        l_truth => {
                            let r = eval(right, tuple)?;
                            Ok(match (l_truth, truth(&r)) {
                                (_, Some(false)) => Value::Bool(false),
                                (Some(true), Some(true)) => Value::Bool(true),
                                _ => Value::Null,
                            })
                        }
                    };
                }
                BinOp::Or => {
                    return match truth(&l) {
                        Some(true) => Ok(Value::Bool(true)),
                        l_truth => {
                            let r = eval(right, tuple)?;
                            Ok(match (l_truth, truth(&r)) {
                                (_, Some(true)) => Value::Bool(true),
                                (Some(false), Some(false)) => Value::Bool(false),
                                _ => Value::Null,
                            })
                        }
                    };
                }
                _ => {}
            }
            let r = eval(right, tuple)?;
            if op.is_comparison() {
                return Ok(compare_op(*op, &l, &r));
            }
            arithmetic(*op, &l, &r)
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, tuple)?;
            match op {
                UnOp::Not => Ok(match truth(&v) {
                    None => Value::Null,
                    Some(b) => Value::Bool(!b),
                }),
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => i
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or(RelError::Arithmetic("overflow")),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(RelError::TypeMismatch {
                        expected: "numeric".into(),
                        got: other.type_name().into(),
                    }),
                },
            }
        }
        Expr::Like { expr, pattern } => {
            let v = eval(expr, tuple)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Bool(glob_match(pattern, &s))),
                other => Err(RelError::TypeMismatch {
                    expected: "TEXT".into(),
                    got: other.type_name().into(),
                }),
            }
        }
        Expr::IsNull(e) => Ok(Value::Bool(eval(e, tuple)?.is_null())),
    }
}

/// Evaluate a predicate: NULL counts as not-satisfied.
pub fn eval_pred(expr: &Expr, tuple: &Tuple) -> RelResult<bool> {
    Ok(truth(&eval(expr, tuple)?).unwrap_or(false))
}

/// Truth value of a result (`None` = unknown). Non-boolean, non-null values
/// are a type error surfaced as unknown=false at predicate positions; the
/// planner typechecks predicates so this is belt-and-braces.
pub(crate) fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        _ => Some(false),
    }
}

/// One comparison, by reference — the kernel shared by the interpreter and
/// the batch evaluator. NULL on either side yields NULL.
pub(crate) fn compare_op(op: BinOp, l: &Value, r: &Value) -> Value {
    match l.compare(r) {
        None => Value::Null,
        Some(ord) => Value::Bool(match op {
            BinOp::Eq => ord == Ordering::Equal,
            BinOp::Ne => ord != Ordering::Equal,
            BinOp::Lt => ord == Ordering::Less,
            BinOp::Le => ord != Ordering::Greater,
            BinOp::Gt => ord == Ordering::Greater,
            BinOp::Ge => ord != Ordering::Less,
            _ => unreachable!("compare_op() called with {op:?}"),
        }),
    }
}

pub(crate) fn arithmetic(op: BinOp, l: &Value, r: &Value) -> RelResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Int op Int stays exact; anything involving a float is float.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        let (a, b) = (*a, *b);
        return match op {
            BinOp::Add => a
                .checked_add(b)
                .map(Value::Int)
                .ok_or(RelError::Arithmetic("overflow")),
            BinOp::Sub => a
                .checked_sub(b)
                .map(Value::Int)
                .ok_or(RelError::Arithmetic("overflow")),
            BinOp::Mul => a
                .checked_mul(b)
                .map(Value::Int)
                .ok_or(RelError::Arithmetic("overflow")),
            BinOp::Div => {
                if b == 0 {
                    Err(RelError::Arithmetic("division by zero"))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    Err(RelError::Arithmetic("division by zero"))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!("arithmetic() called with {op:?}"),
        };
    }
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(RelError::TypeMismatch {
            expected: "numeric".into(),
            got: format!("{} {} {}", l.type_name(), op.token(), r.type_name()),
        });
    };
    let out = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Err(RelError::Arithmetic("division by zero"));
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Err(RelError::Arithmetic("division by zero"));
            }
            a % b
        }
        _ => unreachable!(),
    };
    Ok(Value::Float(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: Vec<Value>) -> Tuple {
        Tuple::new(values)
    }

    fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn comparisons() {
        let empty = t(vec![]);
        assert_eq!(
            eval(
                &bin(BinOp::Lt, lit(Value::Int(1)), lit(Value::Int(2))),
                &empty
            )
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(
                &bin(BinOp::Ge, lit(Value::text("b")), lit(Value::text("a"))),
                &empty
            )
            .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(
                &bin(BinOp::Eq, lit(Value::Int(2)), lit(Value::Float(2.0))),
                &empty
            )
            .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn null_comparisons_are_null() {
        let empty = t(vec![]);
        let e = bin(BinOp::Eq, lit(Value::Null), lit(Value::Int(1)));
        assert_eq!(eval(&e, &empty).unwrap(), Value::Null);
        assert!(!eval_pred(&e, &empty).unwrap());
    }

    #[test]
    fn kleene_and_or() {
        let empty = t(vec![]);
        let null = lit(Value::Null);
        let tru = lit(Value::Bool(true));
        let fal = lit(Value::Bool(false));
        assert_eq!(
            eval(&bin(BinOp::And, null.clone(), fal.clone()), &empty).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&bin(BinOp::And, null.clone(), tru.clone()), &empty).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&bin(BinOp::Or, null.clone(), tru.clone()), &empty).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&bin(BinOp::Or, null.clone(), fal), &empty).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&bin(BinOp::Or, null.clone(), null), &empty).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // false AND (1/0) must not error.
        let empty = t(vec![]);
        let div0 = bin(BinOp::Div, lit(Value::Int(1)), lit(Value::Int(0)));
        let e = bin(BinOp::And, lit(Value::Bool(false)), div0.clone());
        assert_eq!(eval(&e, &empty).unwrap(), Value::Bool(false));
        let e = bin(BinOp::Or, lit(Value::Bool(true)), div0);
        assert_eq!(eval(&e, &empty).unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let empty = t(vec![]);
        assert_eq!(
            eval(
                &bin(BinOp::Add, lit(Value::Int(2)), lit(Value::Int(3))),
                &empty
            )
            .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval(
                &bin(BinOp::Div, lit(Value::Int(7)), lit(Value::Int(2))),
                &empty
            )
            .unwrap(),
            Value::Int(3),
            "integer division truncates"
        );
        assert_eq!(
            eval(
                &bin(BinOp::Mul, lit(Value::Float(1.5)), lit(Value::Int(4))),
                &empty
            )
            .unwrap(),
            Value::Float(6.0)
        );
        assert_eq!(
            eval(
                &bin(BinOp::Mod, lit(Value::Int(7)), lit(Value::Int(3))),
                &empty
            )
            .unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn arithmetic_errors() {
        let empty = t(vec![]);
        assert!(matches!(
            eval(
                &bin(BinOp::Div, lit(Value::Int(1)), lit(Value::Int(0))),
                &empty
            ),
            Err(RelError::Arithmetic(_))
        ));
        assert!(matches!(
            eval(
                &bin(BinOp::Add, lit(Value::Int(i64::MAX)), lit(Value::Int(1))),
                &empty
            ),
            Err(RelError::Arithmetic(_))
        ));
        assert!(eval(
            &bin(BinOp::Add, lit(Value::text("a")), lit(Value::Int(1))),
            &empty
        )
        .is_err());
    }

    #[test]
    fn null_arithmetic_propagates() {
        let empty = t(vec![]);
        assert_eq!(
            eval(
                &bin(BinOp::Add, lit(Value::Null), lit(Value::Int(1))),
                &empty
            )
            .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn unary_ops() {
        let empty = t(vec![]);
        assert_eq!(
            eval(
                &Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(lit(Value::Int(5)))
                },
                &empty
            )
            .unwrap(),
            Value::Int(-5)
        );
        assert_eq!(
            eval(
                &Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(lit(Value::Bool(true)))
                },
                &empty
            )
            .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(
                &Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(lit(Value::Null))
                },
                &empty
            )
            .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn like_and_is_null() {
        let row = t(vec![Value::text("anderson"), Value::Null]);
        let e = Expr::Like {
            expr: Box::new(Expr::Column(0)),
            pattern: "*son".into(),
        };
        assert_eq!(eval(&e, &row).unwrap(), Value::Bool(true));
        let e = Expr::IsNull(Box::new(Expr::Column(1)));
        assert_eq!(eval(&e, &row).unwrap(), Value::Bool(true));
        let e = Expr::IsNull(Box::new(Expr::Column(0)));
        assert_eq!(eval(&e, &row).unwrap(), Value::Bool(false));
        // LIKE over NULL is NULL.
        let e = Expr::Like {
            expr: Box::new(Expr::Column(1)),
            pattern: "*".into(),
        };
        assert_eq!(eval(&e, &row).unwrap(), Value::Null);
    }

    #[test]
    fn column_access_and_errors() {
        let row = t(vec![Value::Int(9)]);
        assert_eq!(eval(&Expr::Column(0), &row).unwrap(), Value::Int(9));
        assert!(eval(&Expr::Column(5), &row).is_err());
        assert!(eval(&Expr::ColumnRef("x".into()), &row).is_err());
    }
}
