//! One-time compilation of resolved expressions into flat programs
//! evaluated over column batches with selection vectors.
//!
//! The row interpreter in [`super`] walks the `Expr` tree once per row,
//! cloning a [`Value`] for every column and literal it touches. For a scan
//! that is the dominant cost once pages are cached. This module compiles a
//! resolved expression **once per query** into a [`Program`]: a flat,
//! post-order array of instructions whose operands name table columns,
//! interned constants, or the registers of earlier instructions. Evaluation
//! then runs each instruction as a tight kernel loop over the rows named by
//! a **selection vector** — values are read by reference (no per-row
//! allocation), and results land in preallocated per-instruction registers
//! that are reused from batch to batch.
//!
//! Short-circuiting is vectorized, not abandoned: an `AND` evaluates its
//! right subtree only over the rows where the left side was not already
//! false (the selection vector *narrows*), and an `OR` only where the left
//! side was not already true. This preserves the interpreter's semantics
//! exactly — including which rows can surface evaluation errors — while
//! turning `a AND b AND c` into a pipeline of ever-narrower kernel passes.
//!
//! Kleene three-valued logic, checked arithmetic, `LIKE`, and `IS NULL`
//! all delegate to the same kernels as the row interpreter
//! ([`super::compare_op`], [`super::arithmetic`], [`super::truth`]), so the
//! two evaluators cannot drift apart.

use super::{arithmetic, compare_op, truth};
use crate::error::{RelError, RelResult};
use crate::expr::{glob_match, BinOp, Expr, UnOp};
use crate::value::Value;

/// A column-oriented batch of rows flowing between vectorized operators.
///
/// `cols[c]` holds column `c` for all `len` rows; `sel` names the rows that
/// are live, in ascending order. Operators narrow `sel` rather than moving
/// rows. A column vector may be left empty when no program in the pipeline
/// reads it (late materialization), and a materialized column is only
/// guaranteed meaningful at the rows in `sel` at the time it was filled.
#[derive(Debug, Default)]
pub struct Batch {
    /// Column-major values, indexed `cols[column][row]`.
    pub cols: Vec<Vec<Value>>,
    /// Number of rows in the batch.
    pub len: usize,
    /// Live row indexes, ascending.
    pub sel: Vec<u32>,
}

impl Batch {
    /// The identity selection `0..n`.
    pub fn identity_sel(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }
}

/// Where an instruction operand's per-row value comes from.
#[derive(Debug, Clone, Copy)]
enum Operand {
    /// A batch column.
    Col(u32),
    /// An interned literal (one shared value, never cloned per row).
    Const(u32),
    /// The register of an earlier instruction.
    Reg(u32),
}

/// The kernel an instruction runs. Comparison and arithmetic reuse the
/// row interpreter's scalar kernels over borrowed values.
#[derive(Debug, Clone)]
enum Kernel {
    /// A comparison ([`compare_op`]).
    Cmp(BinOp),
    /// Checked arithmetic ([`arithmetic`]).
    Arith(BinOp),
    /// Kleene AND; the right subtree runs over a narrowed selection.
    And,
    /// Kleene OR; the right subtree runs over a narrowed selection.
    Or,
    /// Kleene NOT.
    Not,
    /// Checked numeric negation.
    Neg,
    /// Glob match against a fixed pattern.
    Like(String),
    /// NULL test (never NULL itself).
    IsNull,
}

/// One instruction: a kernel over one or two operands, writing the register
/// that shares its index. Unary kernels ignore `rhs`.
#[derive(Debug, Clone)]
struct Instr {
    kernel: Kernel,
    lhs: Operand,
    rhs: Operand,
}

/// A compiled expression: flat post-order instructions plus the interned
/// constants they reference. Build once per query with [`compile`], then
/// evaluate per batch with [`Program::eval`] or [`Program::filter`].
#[derive(Debug, Clone)]
pub struct Program {
    instrs: Vec<Instr>,
    consts: Vec<Value>,
    /// Where the expression's result lives after evaluation.
    root: Operand,
    /// Every table column the program reads, sorted ascending.
    cols: Vec<usize>,
}

/// Reusable per-operator evaluation state: one value register per
/// instruction (resized to the batch length on demand, reused across
/// batches) and a pool of scratch selection vectors for narrowed subtrees.
#[derive(Debug, Default)]
pub struct Scratch {
    regs: Vec<Vec<Value>>,
    sel_pool: Vec<Vec<u32>>,
}

/// Compile a resolved expression. Returns `None` when the expression cannot
/// be compiled (an unresolved [`Expr::ColumnRef`]); callers fall back to the
/// row interpreter.
pub fn compile(expr: &Expr) -> Option<Program> {
    let mut p = Program {
        instrs: Vec::new(),
        consts: Vec::new(),
        root: Operand::Const(0),
        cols: Vec::new(),
    };
    p.root = p.compile_expr(expr)?;
    if let Operand::Col(c) = p.root {
        p.note_col(c);
    }
    p.cols.sort_unstable();
    p.cols.dedup();
    Some(p)
}

impl Program {
    fn note_col(&mut self, c: u32) {
        self.cols.push(c as usize);
    }

    fn push(&mut self, kernel: Kernel, lhs: Operand, rhs: Operand) -> Operand {
        for op in [lhs, rhs] {
            if let Operand::Col(c) = op {
                self.note_col(c);
            }
        }
        self.instrs.push(Instr { kernel, lhs, rhs });
        Operand::Reg((self.instrs.len() - 1) as u32)
    }

    fn compile_expr(&mut self, e: &Expr) -> Option<Operand> {
        Some(match e {
            Expr::Column(i) => Operand::Col(u32::try_from(*i).ok()?),
            Expr::ColumnRef(_) => return None,
            Expr::Literal(v) => {
                self.consts.push(v.clone());
                Operand::Const((self.consts.len() - 1) as u32)
            }
            Expr::Binary { op, left, right } => {
                let l = self.compile_expr(left)?;
                let r = self.compile_expr(right)?;
                let kernel = match op {
                    BinOp::And => Kernel::And,
                    BinOp::Or => Kernel::Or,
                    op if op.is_comparison() => Kernel::Cmp(*op),
                    op => Kernel::Arith(*op),
                };
                self.push(kernel, l, r)
            }
            Expr::Unary { op, expr } => {
                let s = self.compile_expr(expr)?;
                let kernel = match op {
                    UnOp::Not => Kernel::Not,
                    UnOp::Neg => Kernel::Neg,
                };
                self.push(kernel, s, s)
            }
            Expr::Like { expr, pattern } => {
                let s = self.compile_expr(expr)?;
                self.push(Kernel::Like(pattern.clone()), s, s)
            }
            Expr::IsNull(e) => {
                let s = self.compile_expr(e)?;
                self.push(Kernel::IsNull, s, s)
            }
        })
    }

    /// Every table column the program reads, sorted ascending. The scan
    /// uses this to decode only what a query touches.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Evaluate over the rows in `batch.sel`. Results are readable via
    /// [`Program::result`] / [`Program::take_result`] until the scratch is
    /// reused.
    pub fn eval(&self, batch: &Batch, scratch: &mut Scratch) -> RelResult<()> {
        self.eval_cols(&batch.cols, batch.len, &batch.sel, scratch)
    }

    /// Evaluate as a predicate over `batch.sel` and narrow the selection to
    /// the rows where the result is `true` (NULL counts as not-satisfied,
    /// matching [`super::eval_pred`]).
    pub fn filter(&self, batch: &mut Batch, scratch: &mut Scratch) -> RelResult<()> {
        self.eval_cols(&batch.cols, batch.len, &batch.sel, scratch)?;
        let Batch { cols, sel, .. } = batch;
        sel.retain(|&r| truth(self.read(self.root, cols, &scratch.regs, r as usize)) == Some(true));
        Ok(())
    }

    /// The result for `row` after [`Program::eval`], by reference.
    pub fn result<'v>(&'v self, batch: &'v Batch, scratch: &'v Scratch, row: usize) -> &'v Value {
        self.read(self.root, &batch.cols, &scratch.regs, row)
    }

    /// Move the result for `row` out (registers give their value up;
    /// columns and constants are cloned). Used to gather projection output.
    pub fn take_result(&self, batch: &Batch, scratch: &mut Scratch, row: usize) -> Value {
        match self.root {
            Operand::Reg(r) => std::mem::replace(&mut scratch.regs[r as usize][row], Value::Null),
            Operand::Col(c) => batch.cols[c as usize][row].clone(),
            Operand::Const(k) => self.consts[k as usize].clone(),
        }
    }

    fn eval_cols(
        &self,
        cols: &[Vec<Value>],
        n: usize,
        sel: &[u32],
        scratch: &mut Scratch,
    ) -> RelResult<()> {
        if scratch.regs.len() < self.instrs.len() {
            scratch.regs.resize_with(self.instrs.len(), Vec::new);
        }
        if let Operand::Reg(r) = self.root {
            self.eval_instr(r as usize, cols, n, sel, scratch)?;
        }
        Ok(())
    }

    /// Resolve an operand to its value for `row`. Registers must already
    /// have been evaluated for `row`'s selection.
    fn read<'v>(
        &'v self,
        op: Operand,
        cols: &'v [Vec<Value>],
        regs: &'v [Vec<Value>],
        row: usize,
    ) -> &'v Value {
        match op {
            Operand::Col(c) => &cols[c as usize][row],
            Operand::Const(k) => &self.consts[k as usize],
            Operand::Reg(r) => &regs[r as usize][row],
        }
    }

    /// Evaluate an operand's subtree (a no-op for columns and constants).
    fn prep(
        &self,
        op: Operand,
        cols: &[Vec<Value>],
        n: usize,
        sel: &[u32],
        scratch: &mut Scratch,
    ) -> RelResult<()> {
        match op {
            Operand::Reg(r) => self.eval_instr(r as usize, cols, n, sel, scratch),
            _ => Ok(()),
        }
    }

    /// Run instruction `idx` over `sel`, filling its register at those rows.
    fn eval_instr(
        &self,
        idx: usize,
        cols: &[Vec<Value>],
        n: usize,
        sel: &[u32],
        scratch: &mut Scratch,
    ) -> RelResult<()> {
        let instr = &self.instrs[idx];
        // Logic kernels drive their right subtree over a narrowed selection
        // — the vectorized form of short-circuiting.
        if let Kernel::And | Kernel::Or = instr.kernel {
            let skip = match instr.kernel {
                Kernel::And => Some(false),
                _ => Some(true),
            };
            self.prep(instr.lhs, cols, n, sel, scratch)?;
            let mut rhs_sel = scratch.sel_pool.pop().unwrap_or_default();
            rhs_sel.clear();
            for &r in sel {
                if truth(self.read(instr.lhs, cols, &scratch.regs, r as usize)) != skip {
                    rhs_sel.push(r);
                }
            }
            let res = self.prep(instr.rhs, cols, n, &rhs_sel, scratch);
            scratch.sel_pool.push(rhs_sel);
            res?;
            let mut out = std::mem::take(&mut scratch.regs[idx]);
            if out.len() < n {
                out.resize(n, Value::Null);
            }
            let is_and = matches!(instr.kernel, Kernel::And);
            for &r in sel {
                let i = r as usize;
                let lt = truth(self.read(instr.lhs, cols, &scratch.regs, i));
                out[i] = if lt == skip {
                    Value::Bool(!is_and)
                } else {
                    // The right register was filled for exactly these rows.
                    let rt = truth(self.read(instr.rhs, cols, &scratch.regs, i));
                    match (is_and, lt, rt) {
                        (true, _, Some(false)) => Value::Bool(false),
                        (true, Some(true), Some(true)) => Value::Bool(true),
                        (false, _, Some(true)) => Value::Bool(true),
                        (false, Some(false), Some(false)) => Value::Bool(false),
                        _ => Value::Null,
                    }
                };
            }
            scratch.regs[idx] = out;
            return Ok(());
        }

        self.prep(instr.lhs, cols, n, sel, scratch)?;
        if matches!(instr.kernel, Kernel::Cmp(_) | Kernel::Arith(_)) {
            self.prep(instr.rhs, cols, n, sel, scratch)?;
        }
        let mut out = std::mem::take(&mut scratch.regs[idx]);
        if out.len() < n {
            out.resize(n, Value::Null);
        }
        let regs = &scratch.regs;
        for &r in sel {
            let i = r as usize;
            let l = self.read(instr.lhs, cols, regs, i);
            out[i] = match &instr.kernel {
                Kernel::Cmp(op) => compare_op(*op, l, self.read(instr.rhs, cols, regs, i)),
                Kernel::Arith(op) => arithmetic(*op, l, self.read(instr.rhs, cols, regs, i))?,
                Kernel::Not => match truth(l) {
                    None => Value::Null,
                    Some(b) => Value::Bool(!b),
                },
                Kernel::Neg => match l {
                    Value::Null => Value::Null,
                    Value::Int(v) => {
                        Value::Int(v.checked_neg().ok_or(RelError::Arithmetic("overflow"))?)
                    }
                    Value::Float(f) => Value::Float(-f),
                    other => {
                        return Err(RelError::TypeMismatch {
                            expected: "numeric".into(),
                            got: other.type_name().into(),
                        })
                    }
                },
                Kernel::Like(pattern) => match l {
                    Value::Null => Value::Null,
                    Value::Text(s) => Value::Bool(glob_match(pattern, s)),
                    other => {
                        return Err(RelError::TypeMismatch {
                            expected: "TEXT".into(),
                            got: other.type_name().into(),
                        })
                    }
                },
                Kernel::IsNull => Value::Bool(l.is_null()),
                Kernel::And | Kernel::Or => unreachable!("handled above"),
            };
        }
        scratch.regs[idx] = out;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::{eval, eval_pred};
    use super::*;
    use crate::tuple::Tuple;

    fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// Column-major batch from row-major literals, all rows selected.
    fn batch(rows: &[Vec<Value>]) -> Batch {
        let ncols = rows.first().map_or(0, Vec::len);
        let mut cols = vec![Vec::with_capacity(rows.len()); ncols];
        for row in rows {
            for (c, v) in row.iter().enumerate() {
                cols[c].push(v.clone());
            }
        }
        Batch {
            cols,
            len: rows.len(),
            sel: Batch::identity_sel(rows.len()),
        }
    }

    /// The cross-check at the heart of the design: for every row, the
    /// program's result must equal the row interpreter's.
    fn assert_matches_interpreter(expr: &Expr, rows: &[Vec<Value>]) {
        let b = batch(rows);
        let prog = compile(expr).expect("compilable");
        let mut scratch = Scratch::default();
        prog.eval(&b, &mut scratch).expect("vectorized eval");
        for (i, row) in rows.iter().enumerate() {
            let want = eval(expr, &Tuple::new(row.clone())).expect("row eval");
            assert_eq!(
                prog.result(&b, &scratch, i),
                &want,
                "row {i} diverged for {expr:?}"
            );
        }
    }

    #[test]
    fn comparisons_arithmetic_and_nulls_match_interpreter() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::text("anderson"), Value::Float(1.5)],
            vec![Value::Int(-3), Value::text("kim"), Value::Float(-0.5)],
            vec![Value::Null, Value::Null, Value::Null],
            vec![Value::Int(7), Value::text(""), Value::Float(7.0)],
        ];
        let exprs = [
            bin(BinOp::Lt, col(0), lit(Value::Int(2))),
            bin(BinOp::Eq, col(0), col(2)),
            bin(BinOp::Ge, col(1), lit(Value::text("b"))),
            bin(BinOp::Add, col(0), lit(Value::Int(10))),
            bin(BinOp::Mul, col(2), col(0)),
            Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(col(0)),
            },
            Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(bin(BinOp::Gt, col(0), lit(Value::Int(0)))),
            },
            Expr::Like {
                expr: Box::new(col(1)),
                pattern: "*son".into(),
            },
            Expr::IsNull(Box::new(col(1))),
            bin(
                BinOp::And,
                bin(BinOp::Gt, col(0), lit(Value::Int(0))),
                bin(BinOp::Lt, col(2), lit(Value::Float(2.0))),
            ),
            bin(
                BinOp::Or,
                Expr::IsNull(Box::new(col(0))),
                bin(BinOp::Ne, col(0), lit(Value::Int(7))),
            ),
        ];
        for e in &exprs {
            assert_matches_interpreter(e, &rows);
        }
    }

    #[test]
    fn kleene_truth_table_matches_interpreter() {
        let operands = [Value::Null, Value::Bool(true), Value::Bool(false)];
        let row = vec![vec![Value::Int(0)]];
        for op in [BinOp::And, BinOp::Or] {
            for l in &operands {
                for r in &operands {
                    let e = bin(op, lit(l.clone()), lit(r.clone()));
                    assert_matches_interpreter(&e, &row);
                }
            }
        }
    }

    #[test]
    fn filter_narrows_to_true_rows_only() {
        // x > 0 — NULL is not-satisfied, like eval_pred.
        let rows = vec![
            vec![Value::Int(5)],
            vec![Value::Null],
            vec![Value::Int(-2)],
            vec![Value::Int(1)],
        ];
        let e = bin(BinOp::Gt, col(0), lit(Value::Int(0)));
        let mut b = batch(&rows);
        let prog = compile(&e).unwrap();
        prog.filter(&mut b, &mut Scratch::default()).unwrap();
        assert_eq!(b.sel, vec![0, 3]);
        for (i, row) in rows.iter().enumerate() {
            let want = eval_pred(&e, &Tuple::new(row.clone())).unwrap();
            assert_eq!(b.sel.contains(&(i as u32)), want);
        }
    }

    #[test]
    fn and_narrowing_skips_rhs_errors() {
        // x <> 0 AND 10 / x > 1: the division never runs where x = 0.
        let rows = vec![
            vec![Value::Int(5)],
            vec![Value::Int(0)],
            vec![Value::Int(20)],
        ];
        let e = bin(
            BinOp::And,
            bin(BinOp::Ne, col(0), lit(Value::Int(0))),
            bin(
                BinOp::Gt,
                bin(BinOp::Div, lit(Value::Int(10)), col(0)),
                lit(Value::Int(1)),
            ),
        );
        let mut b = batch(&rows);
        let prog = compile(&e).unwrap();
        prog.filter(&mut b, &mut Scratch::default()).unwrap();
        assert_eq!(b.sel, vec![0]);

        // true OR (1/0) never runs the division either.
        let e = bin(
            BinOp::Or,
            lit(Value::Bool(true)),
            bin(BinOp::Div, lit(Value::Int(1)), lit(Value::Int(0))),
        );
        assert_matches_interpreter(&e, &rows);
    }

    #[test]
    fn errors_surface_like_the_interpreter() {
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(0)]];
        // Unguarded division by a zero column errors in both evaluators.
        let e = bin(BinOp::Div, lit(Value::Int(1)), col(0));
        let b = batch(&rows);
        let prog = compile(&e).unwrap();
        let err = prog.eval(&b, &mut Scratch::default());
        assert!(matches!(err, Err(RelError::Arithmetic(_))));
        // LIKE over a non-text column is a type error.
        let e = Expr::Like {
            expr: Box::new(col(0)),
            pattern: "*".into(),
        };
        let prog = compile(&e).unwrap();
        assert!(prog.eval(&b, &mut Scratch::default()).is_err());
    }

    #[test]
    fn unresolved_column_refs_do_not_compile() {
        assert!(compile(&Expr::ColumnRef("x".into())).is_none());
        let e = bin(BinOp::Eq, Expr::ColumnRef("x".into()), lit(Value::Int(1)));
        assert!(compile(&e).is_none());
    }

    #[test]
    fn columns_lists_referenced_columns_sorted() {
        let e = bin(
            BinOp::And,
            bin(BinOp::Eq, col(3), col(1)),
            bin(BinOp::Gt, col(1), lit(Value::Int(0))),
        );
        assert_eq!(compile(&e).unwrap().columns(), &[1, 3]);
        assert_eq!(compile(&col(2)).unwrap().columns(), &[2]);
        assert!(compile(&lit(Value::Int(1))).unwrap().columns().is_empty());
    }

    #[test]
    fn take_result_gathers_projection_output() {
        let rows = vec![
            vec![Value::Int(1), Value::text("a")],
            vec![Value::Int(2), Value::text("b")],
        ];
        let b = batch(&rows);
        let mut scratch = Scratch::default();
        // Computed expression root (register).
        let prog = compile(&bin(BinOp::Add, col(0), lit(Value::Int(10)))).unwrap();
        prog.eval(&b, &mut scratch).unwrap();
        assert_eq!(prog.take_result(&b, &mut scratch, 1), Value::Int(12));
        // Bare column root and bare literal root.
        let prog = compile(&col(1)).unwrap();
        prog.eval(&b, &mut scratch).unwrap();
        assert_eq!(prog.take_result(&b, &mut scratch, 0), Value::text("a"));
        let prog = compile(&lit(Value::Int(9))).unwrap();
        prog.eval(&b, &mut scratch).unwrap();
        assert_eq!(prog.take_result(&b, &mut scratch, 1), Value::Int(9));
    }

    #[test]
    fn registers_are_reused_across_batches() {
        let e = bin(BinOp::Gt, col(0), lit(Value::Int(0)));
        let prog = compile(&e).unwrap();
        let mut scratch = Scratch::default();
        let mut b = batch(&[vec![Value::Int(1)], vec![Value::Int(-1)]]);
        prog.filter(&mut b, &mut scratch).unwrap();
        assert_eq!(b.sel, vec![0]);
        // Second, larger batch through the same scratch.
        let mut b = batch(&[
            vec![Value::Int(-1)],
            vec![Value::Int(2)],
            vec![Value::Int(3)],
        ]);
        prog.filter(&mut b, &mut scratch).unwrap();
        assert_eq!(b.sel, vec![1, 2]);
    }
}
