//! Forms stored *in the database* — the 1983 arrangement — plus ad-hoc
//! browse ordering.
//!
//! A designer tweaks a compiled form (captions, widths, domains, help) and
//! saves it; every later window on that view gets the stored form. Specs
//! live in an ordinary relation, `wow_forms(view TEXT KEY, spec TEXT)`, so
//! they travel with the data, survive via the WAL like everything else,
//! and can even be browsed through a window themselves.

use crate::error::WowResult;
use crate::window_mgr::WinId;
use crate::world::World;
use wow_forms::FormSpec;
use wow_rel::value::Value;
use wow_views::expand::ViewQuery;

/// The relation that holds stored forms.
pub const FORMS_TABLE: &str = "wow_forms";

impl World {
    /// Ensure the forms relation exists.
    fn ensure_forms_table(&mut self) -> WowResult<()> {
        if !self.db().catalog().has_table(FORMS_TABLE) {
            self.db_mut()
                .run("CREATE TABLE wow_forms (view TEXT KEY, spec TEXT NOT NULL)")?;
        }
        Ok(())
    }

    /// Persist a window's current form as the stored form for its view.
    pub fn save_form(&mut self, win: WinId) -> WowResult<()> {
        self.ensure_forms_table()?;
        let (view, encoded) = {
            let w = self.window(win)?;
            (w.view.clone(), w.form.spec.to_stored())
        };
        self.save_form_spec(&view, &encoded)
    }

    /// Persist an explicit spec for a view.
    pub fn save_form_spec(&mut self, view: &str, encoded: &str) -> WowResult<()> {
        self.ensure_forms_table()?;
        // Upsert by key.
        let existing = self
            .db_mut()
            .index_lookup("pk_wow_forms", &[Value::text(view)])?;
        match existing.first() {
            Some(&rid) => {
                self.db_mut().update_rid(
                    FORMS_TABLE,
                    rid,
                    vec![Value::text(view), Value::text(encoded)],
                )?;
            }
            None => {
                self.db_mut()
                    .insert(FORMS_TABLE, vec![Value::text(view), Value::text(encoded)])?;
            }
        }
        Ok(())
    }

    /// Load the stored form for a view, if any. Malformed or stale specs
    /// (wrong field count after a schema change) are ignored by the caller.
    pub fn load_form_spec(&mut self, view: &str) -> Option<FormSpec> {
        if !self.db().catalog().has_table(FORMS_TABLE) {
            return None;
        }
        let rid = self
            .db_mut()
            .index_lookup("pk_wow_forms", &[Value::text(view)])
            .ok()?
            .into_iter()
            .next()?;
        let info = self.db().catalog().table(FORMS_TABLE).ok()?.clone();
        let row = self.db_mut().get_row(info.id, rid).ok().flatten()?;
        match &row.values[1] {
            Value::Text(encoded) => FormSpec::from_stored(encoded),
            _ => None,
        }
    }

    /// Drop the stored form for a view (fall back to the compiled default
    /// for future windows).
    pub fn delete_form_spec(&mut self, view: &str) -> WowResult<bool> {
        if !self.db().catalog().has_table(FORMS_TABLE) {
            return Ok(false);
        }
        let Some(rid) = self
            .db_mut()
            .index_lookup("pk_wow_forms", &[Value::text(view)])?
            .into_iter()
            .next()
        else {
            return Ok(false);
        };
        Ok(self.db_mut().delete_rid(FORMS_TABLE, rid)?)
    }

    /// Re-order a window's browsing by a view column. This switches the
    /// window to a materialized cursor sorted by that column (the primary
    /// key's index order is the only free ordering; anything else pays the
    /// sort — the Table 2 trade, now user-selectable).
    pub fn sort_window(&mut self, win: WinId, column: &str, ascending: bool) -> WowResult<()> {
        let (view, upd, pred) = {
            let w = self.window(win)?;
            (w.view.clone(), w.upd.clone(), w.qbf_pred.clone())
        };
        let query = ViewQuery {
            pred,
            sort: vec![wow_rel::quel::ast::SortKey {
                column: column.to_string(),
                ascending,
            }],
            limit: None,
        };
        let cursor = {
            let (db, vc, _) = self.parts(win)?;
            crate::browse::BrowseCursor::materialized(db, vc, &view, query, upd.as_ref())?
        };
        let w = self.window_mut(win)?;
        w.cursor = cursor;
        w.status = format!("sorted by {column}{}", if ascending { "" } else { " desc" });
        w.show_current();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::WorldConfig;
    use crate::window_mgr::WindowStyle;
    use crate::world::World;
    use wow_rel::value::Value;

    fn world() -> World {
        let mut w = World::new(WorldConfig::default());
        w.db_mut()
            .run(
                r#"
                CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)
                RANGE OF e IS emp
                APPEND TO emp (name = "alice", dept = "toy", salary = 120)
                APPEND TO emp (name = "bob", dept = "shoe", salary = 90)
                APPEND TO emp (name = "carol", dept = "toy", salary = 150)
                "#,
            )
            .unwrap();
        w.define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .unwrap();
        w
    }

    #[test]
    fn stored_forms_round_trip_and_apply() {
        let mut w = world();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        // Designer tweaks the caption, saves.
        {
            let spec = &mut w.window_mut(win).unwrap().form.spec;
            spec.fields[2].caption = "Monthly pay".into();
            spec.fields[2].width = 8;
        }
        w.save_form(win).unwrap();
        w.close_window(win).unwrap();
        // A new window on the same view picks up the stored form.
        let win2 = w.open_window(s, "emps", None).unwrap();
        let spec = &w.window(win2).unwrap().form.spec;
        assert_eq!(spec.fields[2].caption, "Monthly pay");
        assert_eq!(spec.fields[2].width, 8);
        // And it renders with the new caption.
        let screen = w.render_snapshot().join("\n");
        assert!(screen.contains("Monthly pay:"), "{screen}");
        // Deleting the stored form restores the compiled default.
        assert!(w.delete_form_spec("emps").unwrap());
        w.close_window(win2).unwrap();
        let win3 = w.open_window(s, "emps", None).unwrap();
        assert_eq!(
            w.window(win3).unwrap().form.spec.fields[2].caption,
            "Salary"
        );
    }

    #[test]
    fn stale_stored_forms_are_ignored() {
        let mut w = world();
        // A stored spec with the wrong arity (schema evolved).
        w.save_form_spec(
            "emps",
            "form emps\ntitle emps\nfield only_one|Only|TEXT|10|0|0||\n",
        )
        .unwrap();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        assert_eq!(
            w.window(win).unwrap().form.spec.fields.len(),
            3,
            "stale spec ignored; compiled default used"
        );
    }

    #[test]
    fn sort_window_reorders_browse() {
        let mut w = world();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        // Default order is pk (name): alice first.
        assert_eq!(
            w.current_row(win).unwrap().unwrap().values[0],
            Value::text("alice")
        );
        w.sort_window(win, "salary", false).unwrap();
        assert_eq!(
            w.current_row(win).unwrap().unwrap().values[2],
            Value::Int(150),
            "highest salary first"
        );
        assert!(w.browse_next(win).unwrap());
        assert_eq!(
            w.current_row(win).unwrap().unwrap().values[2],
            Value::Int(120)
        );
        // Sorted cursors are still updatable (rids retained).
        w.enter_edit(win).unwrap();
        w.window_mut(win).unwrap().form.set_text(2, "125");
        w.commit(win).unwrap();
        let rows = w
            .db_mut()
            .run(r#"RETRIEVE (e.salary) WHERE e.name = "alice""#)
            .unwrap();
        assert_eq!(rows.tuples[0].values[0], Value::Int(125));
    }

    #[test]
    fn grid_windows_render_pages() {
        let mut w = world();
        let s = w.open_session();
        let win = w
            .open_window_styled(s, "emps", None, WindowStyle::Grid)
            .unwrap();
        let screen = w.render_snapshot().join("\n");
        // All three rows visible at once, plus headers.
        assert!(screen.contains("Name"), "{screen}");
        assert!(screen.contains("alice"));
        assert!(screen.contains("bob"));
        assert!(screen.contains("carol"));
        // Selection follows the cursor.
        w.browse_next(win).unwrap();
        let screen2 = w.render_snapshot().join("\n");
        assert!(screen2.contains("bob"));
        // Editing switches to the form and back.
        w.enter_edit(win).unwrap();
        let screen3 = w.render_snapshot().join("\n");
        assert!(
            screen3.contains("Name:"),
            "form shown in edit mode: {screen3}"
        );
        w.cancel_mode(win).unwrap();
        let screen4 = w.render_snapshot().join("\n");
        assert!(!screen4.contains("Name:"), "grid back in browse: {screen4}");
    }
}
