//! # wow-core — Windows on the World
//!
//! The paper's contribution: a **window manager over a shared database**.
//! Each window displays a form bound to a view; users browse, query-by-form,
//! and update the database *through* the window, and concurrent windows over
//! overlapping data stay consistent.
//!
//! * [`world`] — the [`world::World`] facade: database + views + forms +
//!   windows + sessions, embeddable headlessly or over a terminal.
//! * [`session`] — user sessions owning windows and locks.
//! * [`window_mgr`] — window state machines: Browse / Edit / Insert / Query
//!   modes and their key grammar.
//! * [`browse`] — browse cursors: incremental, index-ordered page fetch
//!   (Table 2's subject) with a materialize-and-sort baseline.
//! * [`edit`] — edit/insert/delete commits through updatable views.
//! * [`qbf_mode`] — query-by-form execution.
//! * [`propagate`] — cross-window refresh after commits (Figure 4).
//! * [`locks`] — a strict two-phase relation-lock manager with waits-for
//!   deadlock detection (Table 5's ablation subject).
//! * [`sys`] — system tables (`__wow_metrics`, `__wow_spans`,
//!   `__wow_windows`, `__wow_locks`): the world's own runtime state exposed
//!   as read-only windows through the standard `open_window` path.
//! * [`undo`] — per-session undo of through-window writes.
//! * [`config`] — tunables.
//!
//! ```
//! use wow_core::world::World;
//! use wow_core::config::WorldConfig;
//!
//! let mut world = World::new(WorldConfig::default());
//! world.db_mut().run("CREATE TABLE emp (name TEXT KEY, salary INT)").unwrap();
//! world.db_mut().run(r#"APPEND TO emp (name = "alice", salary = 120)"#).unwrap();
//! world.define_view("all_emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)").unwrap();
//! let session = world.open_session();
//! let win = world.open_window(session, "all_emps", None).unwrap();
//! let row = world.current_row(win).unwrap().unwrap();
//! assert_eq!(row.values[0].to_string(), "alice");
//! ```

pub mod browse;
pub mod config;
pub mod edit;
pub mod error;
pub mod forms_store;
pub mod locks;
pub mod propagate;
pub mod qbf_mode;
pub mod session;
pub mod sys;
pub mod undo;
pub mod window_mgr;
pub mod world;

pub use config::WorldConfig;
pub use error::{WowError, WowResult};
pub use session::SessionId;
pub use sys::{ConnectionInfo, ConnectionsProvider};
pub use window_mgr::{Mode, RefreshKind, WinId, WindowStyle};
pub use world::{RefreshEvent, World};
