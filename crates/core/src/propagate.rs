//! Cross-window consistency: after a commit, refresh every window whose
//! view can see the written relation.
//!
//! This is the "windows stay consistent" half of the paper's thesis and
//! the subject of Figure 4: propagation cost is proportional to the number
//! of *affected* windows; windows over disjoint data cost nothing.

use crate::browse::BrowseCursor;
use crate::error::{WowError, WowResult};
use crate::window_mgr::{Mode, RefreshKind, WinId};
use crate::world::World;
use std::collections::BTreeMap;
use wow_par::stats::{decision, Layer};
use wow_rel::db::ExecCounters;
use wow_rel::delta::BaseDelta;
use wow_views::delta::{compute_view_delta, ViewDelta};

/// Minimum refreshable windows before a fan-out goes parallel: with a
/// single window there is nothing to overlap, and the scoped pool's thread
/// spawn would be pure overhead.
pub const PAR_FANOUT_MIN_WINDOWS: usize = 2;

impl World {
    /// Push a typed write delta through the view algebra and patch every
    /// affected window's screenful in place, falling back to a full
    /// re-query per window only when the view is not delta-maintainable
    /// (aggregates, DISTINCT, grouping, self-joins), the delta is too large
    /// to be worth translating, or the cursor cannot place the delta rows.
    ///
    /// Windows whose view provably cannot see the change (the view delta is
    /// empty — e.g. a filtered view the written row never matched, or a
    /// join the written row joins with nothing through) are skipped
    /// entirely: no refresh, no query, no counter.
    ///
    /// Mid-edit windows are marked stale, exactly like
    /// [`World::propagate_write`]. Returns the ids of the windows updated.
    pub fn propagate_delta(
        &mut self,
        delta: &BaseDelta,
        source: Option<WinId>,
    ) -> WowResult<Vec<WinId>> {
        self.stats.propagations += 1;
        let table = delta.table.clone();
        // Phase 1: which windows can see the table at all (cached map).
        let mut affected: Vec<(WinId, String)> = Vec::new();
        {
            let (db, views, windows, deps) = self.dep_parts();
            for (id, w) in windows {
                if Some(*id) == source {
                    continue;
                }
                if deps.reads(db, views, &w.view, &table).unwrap_or(false) {
                    affected.push((*id, w.view.clone()));
                }
            }
        }
        // Phase 2: translate the base delta once per distinct view. `None`
        // means "fall back to a full refresh" for that view's windows.
        let mut view_deltas: BTreeMap<String, Option<ViewDelta>> = BTreeMap::new();
        if self.config().delta_propagation {
            for (_, view) in &affected {
                if view_deltas.contains_key(view) {
                    continue;
                }
                let (db, views, deps) = self.delta_parts();
                let plan = deps.delta_plan(db, views, view, &table)?.clone();
                let vd = compute_view_delta(db, &plan, delta)?;
                view_deltas.insert(view.clone(), vd);
            }
        }
        // Phase 3: patch deltable windows in place; everything else joins
        // the full-refresh fan-out (parallel when wide enough) at the end.
        let mut refreshed = Vec::new();
        let mut full = Vec::new();
        for (id, view) in affected {
            let mid_edit = matches!(
                self.window(id)?.mode,
                Mode::Edit | Mode::Insert | Mode::Query
            );
            if mid_edit {
                self.window_mut(id)?.stale = true;
                continue;
            }
            match view_deltas.get(&view) {
                Some(Some(vd)) if vd.is_empty() => {
                    // The write is invisible to this view; leave the
                    // window untouched.
                    continue;
                }
                Some(Some(vd)) => {
                    let mut span = wow_obs::span(wow_obs::Op::DeltaRefresh);
                    span.arg(vd.len() as u64);
                    let applied = {
                        let (db, _vc, w) = self.parts(id)?;
                        w.cursor.apply_delta(db, vd)?
                    };
                    if applied {
                        self.note_refresh(id, RefreshKind::Delta);
                        span.finish();
                        self.stats.delta_refreshes += 1;
                        self.stats.delta_rows += vd.len() as u64;
                        self.stats.windows_refreshed += 1;
                        refreshed.push(id);
                    } else {
                        // The delta didn't land; don't count its span.
                        span.cancel();
                        full.push(id);
                    }
                }
                _ => {
                    // Non-deltable view, oversized delta, or delta
                    // propagation disabled: the classic full re-query.
                    full.push(id);
                }
            }
        }
        refreshed.extend(self.refresh_fanout(full)?);
        Ok(refreshed)
    }

    /// Refresh every window whose view (transitively) reads `table`.
    /// `source` is the window that performed the write (refreshed already
    /// by its commit path, so skipped here). Windows that are mid-edit are
    /// not yanked out from under the user — they are marked stale instead.
    ///
    /// The view → base-table reachability comes from the cached
    /// [`wow_views::DepIndex`]: on the warm path (no DDL since the last
    /// propagation) deciding whether a window is affected is a map lookup,
    /// not a walk of the view definitions.
    ///
    /// Returns the ids of the windows refreshed.
    pub fn propagate_write(&mut self, table: &str, source: Option<WinId>) -> WowResult<Vec<WinId>> {
        self.stats.propagations += 1;
        // Collect affected windows first (borrow discipline: the refresh
        // loop needs &mut self).
        let mut affected = Vec::new();
        {
            let (db, views, windows, deps) = self.dep_parts();
            for (id, w) in windows {
                if Some(*id) == source {
                    continue;
                }
                let touches = deps.reads(db, views, &w.view, table).unwrap_or(false);
                if touches {
                    affected.push(*id);
                }
            }
        }
        let mut candidates = Vec::new();
        for id in affected {
            let mid_edit = matches!(
                self.window(id)?.mode,
                Mode::Edit | Mode::Insert | Mode::Query
            );
            if mid_edit {
                self.window_mut(id)?.stale = true;
                continue;
            }
            candidates.push(id);
        }
        self.refresh_fanout(candidates)
    }

    /// Refresh every open window that is not mid-edit (mid-edit windows go
    /// stale, exactly like [`World::propagate_write`]). The blunt
    /// instrument for writes whose footprint is unknown — a raw QUEL
    /// statement executed over the network can touch any table, so the
    /// server brings every window current rather than guessing. Returns
    /// the ids refreshed.
    pub fn refresh_all_windows(&mut self) -> WowResult<Vec<WinId>> {
        self.stats.propagations += 1;
        let mut candidates = Vec::new();
        for id in self.window_ids() {
            let mid_edit = matches!(
                self.window(id)?.mode,
                Mode::Edit | Mode::Insert | Mode::Query
            );
            if mid_edit {
                self.window_mut(id)?.stale = true;
            } else {
                candidates.push(id);
            }
        }
        self.refresh_fanout(candidates)
    }

    /// Refresh a set of windows, overlapping the re-queries across the
    /// worker pool when the fan-out is wide enough.
    ///
    /// The split is *compute then apply*: the compute phase clones each
    /// window's cursor and refreshes the clone against a
    /// [`read replica`](wow_rel::db::Database::read_replica) (read-only
    /// over shared pages, so any number may run concurrently); the apply
    /// phase then splices the refreshed cursors back into the window states
    /// sequentially, so counters, spans, and visible effects land in the
    /// same deterministic order as a serial fan-out.
    ///
    /// A failing window does not abort the fan-out: every healthy window
    /// still refreshes, and the failures come back together as one
    /// [`WowError::PropagationFailed`].
    fn refresh_fanout(&mut self, candidates: Vec<WinId>) -> WowResult<Vec<WinId>> {
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.db().workers();
        // System windows re-materialize their backing tables on refresh,
        // which needs the whole world mutably — any fan-out containing one
        // stays serial.
        let has_sys = candidates.iter().any(|id| {
            self.windows
                .get(id)
                .is_none_or(|w| crate::sys::is_sys_view(&w.view))
        });
        let parallel = workers > 1 && candidates.len() >= PAR_FANOUT_MIN_WINDOWS && !has_sys;
        decision(Layer::Fanout, parallel);
        let mut refreshed = Vec::new();
        let mut failures: Vec<(u32, String)> = Vec::new();
        if parallel {
            type Computed = (WinId, WowResult<(BrowseCursor, ExecCounters)>);
            let computed: Vec<Computed> = {
                let mut span = wow_obs::span(wow_obs::Op::ParCompute);
                span.arg(candidates.len() as u64);
                let db = self.db();
                let views = self.views();
                let windows = &self.windows;
                let pool = wow_par::Pool::new(workers);
                pool.map(candidates, |_, id| {
                    let Some(w) = windows.get(&id) else {
                        return (id, Err(WowError::NoSuchWindow(id.0)));
                    };
                    let mut replica = db.read_replica();
                    let mut cursor = w.cursor.clone();
                    let refresh = wow_obs::span(wow_obs::Op::FullRefresh);
                    let r = cursor.refresh(&mut replica, views);
                    refresh.finish();
                    (id, r.map(|()| (cursor, replica.counters())))
                })
            };
            let mut span = wow_obs::span(wow_obs::Op::ParApply);
            for (id, res) in computed {
                match res {
                    Ok((cursor, counters)) => {
                        self.db_mut().merge_counters(counters);
                        let w = self.windows.get_mut(&id).expect("window seen in compute");
                        w.cursor = cursor;
                        self.note_refresh(id, RefreshKind::Full);
                        self.stats.full_refreshes += 1;
                        self.stats.windows_refreshed += 1;
                        refreshed.push(id);
                    }
                    Err(e) => failures.push((id.0, e.to_string())),
                }
            }
            span.arg(refreshed.len() as u64);
            span.finish();
        } else {
            for id in candidates {
                match self.refresh_window(id) {
                    Ok(()) => {
                        self.stats.full_refreshes += 1;
                        self.stats.windows_refreshed += 1;
                        refreshed.push(id);
                    }
                    Err(e) => failures.push((id.0, e.to_string())),
                }
            }
        }
        if failures.is_empty() {
            Ok(refreshed)
        } else {
            Err(WowError::PropagationFailed { failures })
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::WorldConfig;
    use crate::window_mgr::Mode;
    use crate::world::World;

    fn world() -> World {
        let mut w = World::new(WorldConfig::default());
        w.db_mut()
            .run("CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)")
            .unwrap();
        w.db_mut()
            .run("CREATE TABLE part (pno INT KEY, pname TEXT)")
            .unwrap();
        for (n, d, s) in [("alice", "toy", 120), ("bob", "shoe", 90)] {
            w.db_mut()
                .run(&format!(
                    r#"APPEND TO emp (name = "{n}", dept = "{d}", salary = {s})"#
                ))
                .unwrap();
        }
        w.db_mut()
            .run(r#"APPEND TO part (pno = 1, pname = "nut")"#)
            .unwrap();
        w.define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .unwrap();
        w.define_view(
            "toy_emps",
            r#"RANGE OF e IS emp RETRIEVE (e.name, e.salary) WHERE e.dept = "toy""#,
        )
        .unwrap();
        w.define_view("parts", "RANGE OF p IS part RETRIEVE (p.pno, p.pname)")
            .unwrap();
        w
    }

    #[test]
    fn commit_in_one_window_updates_the_other() {
        let mut w = world();
        let s1 = w.open_session();
        let s2 = w.open_session();
        let editor = w.open_window(s1, "emps", None).unwrap();
        let watcher = w.open_window(s2, "toy_emps", None).unwrap();
        // watcher sees alice with 120.
        assert_eq!(
            w.current_row(watcher).unwrap().unwrap().values[1].to_string(),
            "120"
        );
        // editor raises alice through its own window.
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "130");
        w.commit(editor).unwrap();
        // watcher was refreshed by propagation, no manual refresh.
        assert_eq!(
            w.current_row(watcher).unwrap().unwrap().values[1].to_string(),
            "130"
        );
        assert_eq!(w.stats.windows_refreshed, 1);
    }

    #[test]
    fn unrelated_windows_are_not_touched() {
        let mut w = world();
        let s = w.open_session();
        let editor = w.open_window(s, "emps", None).unwrap();
        let _parts = w.open_window(s, "parts", None).unwrap();
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "121");
        w.commit(editor).unwrap();
        assert_eq!(
            w.stats.windows_refreshed, 0,
            "parts window reads a disjoint table"
        );
    }

    #[test]
    fn mid_edit_windows_go_stale_instead() {
        let mut w = world();
        let s1 = w.open_session();
        let s2 = w.open_session();
        let editor = w.open_window(s1, "emps", None).unwrap();
        let other = w.open_window(s2, "toy_emps", None).unwrap();
        w.enter_edit(other).unwrap(); // user is typing here
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "500");
        w.commit(editor).unwrap();
        let other_state = w.window(other).unwrap();
        assert!(other_state.stale);
        assert_eq!(other_state.mode, Mode::Edit);
        // Leaving edit mode refreshes the stale window automatically.
        w.cancel_mode(other).unwrap();
        assert!(!w.window(other).unwrap().stale);
        assert_eq!(
            w.current_row(other).unwrap().unwrap().values[1].to_string(),
            "500"
        );
    }

    #[test]
    fn leaving_any_mode_catches_up_stale_windows() {
        let mut w = world();
        let s1 = w.open_session();
        let s2 = w.open_session();
        let editor = w.open_window(s1, "emps", None).unwrap();
        let other = w.open_window(s2, "toy_emps", None).unwrap();
        // The watcher is composing an insert while the editor commits.
        w.enter_insert(other).unwrap();
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "640");
        w.commit(editor).unwrap();
        assert!(w.window(other).unwrap().stale);
        w.cancel_mode(other).unwrap();
        let state = w.window(other).unwrap();
        assert_eq!(state.mode, Mode::Browse);
        assert!(!state.stale, "insert-mode exit auto-refreshes");
        assert_eq!(
            w.current_row(other).unwrap().unwrap().values[1].to_string(),
            "640"
        );
        // Same through Query mode: running the query rebuilds the cursor
        // against current data, which also clears staleness.
        w.enter_query(other).unwrap();
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "650");
        w.commit(editor).unwrap();
        assert!(w.window(other).unwrap().stale);
        w.apply_query(other).unwrap();
        assert!(!w.window(other).unwrap().stale, "query run refreshes");
        assert_eq!(
            w.current_row(other).unwrap().unwrap().values[1].to_string(),
            "650"
        );
    }

    #[test]
    fn invisible_writes_skip_windows_entirely() {
        let mut w = world();
        let s1 = w.open_session();
        let s2 = w.open_session();
        let editor = w.open_window(s1, "emps", None).unwrap();
        let toys = w.open_window(s2, "toy_emps", None).unwrap();
        // bob is a shoe employee: raising his salary is invisible to
        // toy_emps, so the watcher is neither refreshed nor counted.
        w.browse_next(editor).unwrap(); // move to bob
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "95");
        w.commit(editor).unwrap();
        assert_eq!(w.stats.windows_refreshed, 0, "empty view delta → skip");
        assert_eq!(w.stats.delta_refreshes, 0);
        assert_eq!(w.stats.full_refreshes, 0);
        // alice is a toy employee: her raise patches the watcher in place.
        w.browse_prev(editor).unwrap();
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "121");
        w.commit(editor).unwrap();
        assert_eq!(w.stats.delta_refreshes, 1, "visible delta applied");
        assert_eq!(w.stats.full_refreshes, 0, "no fallback on deltable view");
        assert_eq!(
            w.current_row(toys).unwrap().unwrap().values[1].to_string(),
            "121"
        );
        let _ = toys;
    }

    #[test]
    fn delta_propagation_off_forces_full_refreshes() {
        let cfg = WorldConfig {
            delta_propagation: false,
            ..WorldConfig::default()
        };
        let mut w = World::new(cfg);
        w.db_mut()
            .run("CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)")
            .unwrap();
        w.db_mut()
            .run(r#"APPEND TO emp (name = "alice", dept = "toy", salary = 120)"#)
            .unwrap();
        w.define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .unwrap();
        w.define_view(
            "toy_emps",
            r#"RANGE OF e IS emp RETRIEVE (e.name, e.salary) WHERE e.dept = "toy""#,
        )
        .unwrap();
        let s1 = w.open_session();
        let s2 = w.open_session();
        let editor = w.open_window(s1, "emps", None).unwrap();
        let watcher = w.open_window(s2, "toy_emps", None).unwrap();
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "130");
        w.commit(editor).unwrap();
        assert_eq!(w.stats.full_refreshes, 1, "baseline re-queries");
        assert_eq!(w.stats.delta_refreshes, 0);
        assert_eq!(
            w.current_row(watcher).unwrap().unwrap().values[1].to_string(),
            "130"
        );
    }

    #[test]
    fn propagation_uses_cached_deps_and_sees_ddl() {
        let mut w = world();
        let s1 = w.open_session();
        let s2 = w.open_session();
        let editor = w.open_window(s1, "emps", None).unwrap();
        let watcher = w.open_window(s2, "parts", None).unwrap();
        // Warm the cache: a commit to emp does not touch the parts window.
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "121");
        w.commit(editor).unwrap();
        assert_eq!(w.stats.windows_refreshed, 0);
        let warm = w.dep_index().rebuilds();
        // A second commit reuses the cache verbatim.
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "122");
        w.commit(editor).unwrap();
        assert_eq!(
            w.dep_index().rebuilds(),
            warm,
            "warm path recomputes nothing"
        );
        // Redefine "parts" to read emp instead: the next propagation must
        // rebuild the cache (exactly once) and see the fresh dependency.
        w.redefine_view("parts", "RANGE OF e IS emp RETRIEVE (e.name, e.dept)")
            .unwrap();
        w.refresh_window(watcher).unwrap();
        w.enter_edit(editor).unwrap();
        w.window_mut(editor).unwrap().form.set_text(2, "123");
        w.commit(editor).unwrap();
        assert_eq!(w.stats.windows_refreshed, 1, "watcher now reads emp");
        assert_eq!(w.dep_index().rebuilds(), warm + 1);
    }

    #[test]
    fn fanout_collects_per_window_errors_without_aborting() {
        let mut w = world();
        // A self-join view is not updatable, so its window gets a streamed
        // cursor — one that re-runs the view query (by name, against the
        // live catalog) on every refresh.
        w.define_view(
            "doomed",
            "RANGE OF a IS emp RANGE OF b IS emp \
             RETRIEVE (a.name, b.salary) WHERE a.name = b.name",
        )
        .unwrap();
        let s = w.open_session();
        let healthy = w.open_window(s, "toy_emps", None).unwrap();
        let doomed = w.open_window(s, "doomed", None).unwrap();
        // Poison the view after its window opened: every refresh now
        // divides by zero at eval time.
        w.redefine_view(
            "doomed",
            "RANGE OF a IS emp RANGE OF b IS emp \
             RETRIEVE (a.name, b.salary / (b.salary - b.salary)) WHERE a.name = b.name",
        )
        .unwrap();
        w.db_mut().run("RANGE OF emp IS emp").unwrap();
        w.db_mut()
            .run(r#"REPLACE emp (salary = 200) WHERE emp.name = "alice""#)
            .unwrap();
        let err = w.propagate_write("emp", None).unwrap_err();
        let crate::error::WowError::PropagationFailed { failures } = err else {
            panic!("expected PropagationFailed");
        };
        assert_eq!(failures.len(), 1, "exactly the poisoned window failed");
        assert_eq!(failures[0].0, doomed.0);
        // The healthy window was still refreshed — the fan-out ran to
        // completion instead of aborting at the first failure.
        assert_eq!(
            w.current_row(healthy).unwrap().unwrap().values[1].to_string(),
            "200"
        );
        assert_eq!(w.stats.windows_refreshed, 1);
        assert_eq!(w.stats.full_refreshes, 1);
    }

    #[test]
    fn parallel_fanout_matches_serial_pages_and_stats() {
        // Two identical worlds, one serial, one maximally parallel: after
        // the same write propagates, every window's visible page and every
        // WorldStats counter must agree.
        let build = |workers: usize| {
            let cfg = WorldConfig {
                delta_propagation: false,
                workers,
                ..WorldConfig::default()
            };
            let mut w = World::with_db(cfg, wow_rel::db::Database::in_memory());
            // Exact width: benches and this test bypass the WOW_WORKERS
            // override so "serial" stays serial under any environment.
            w.db_mut().set_workers(workers);
            w.db_mut()
                .run("CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)")
                .unwrap();
            for i in 0..64 {
                w.db_mut()
                    .run(&format!(
                        r#"APPEND TO emp (name = "e{i:03}", dept = "d{}", salary = {})"#,
                        i % 4,
                        100 + i
                    ))
                    .unwrap();
            }
            let s = w.open_session();
            let mut wins = Vec::new();
            for v in 0..8 {
                let name = format!("v{v}");
                w.define_view(
                    &name,
                    &format!(
                        r#"RANGE OF e IS emp RETRIEVE (e.name, e.salary) WHERE e.dept = "d{}""#,
                        v % 4
                    ),
                )
                .unwrap();
                wins.push(w.open_window(s, &name, None).unwrap());
            }
            (w, wins)
        };
        let (mut serial, serial_wins) = build(1);
        let (mut par, par_wins) = build(8);
        assert_eq!(serial.db().workers(), 1);
        assert_eq!(par.db().workers(), 8);
        for w in [&mut serial, &mut par] {
            w.db_mut().run("RANGE OF emp IS emp").unwrap();
            w.db_mut()
                .run(r#"REPLACE emp (salary = 999) WHERE emp.name = "e000""#)
                .unwrap();
        }
        let a = serial.propagate_write("emp", None).unwrap();
        let b = par.propagate_write("emp", None).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(serial.stats, par.stats, "WorldStats must agree exactly");
        for (sw, pw) in serial_wins.iter().zip(&par_wins) {
            let sp: Vec<_> = serial.window(*sw).unwrap().cursor.page_rows();
            let pp: Vec<_> = par.window(*pw).unwrap().cursor.page_rows();
            assert_eq!(sp, pp, "window pages diverged");
        }
    }

    #[test]
    fn deletion_propagates_row_out_of_filtered_views() {
        let mut w = world();
        let s = w.open_session();
        let all = w.open_window(s, "emps", None).unwrap();
        let toys = w.open_window(s, "toy_emps", None).unwrap();
        assert!(w.current_row(toys).unwrap().is_some());
        // Delete alice (the only toy employee) via the all-emps window.
        w.delete_current(all).unwrap();
        assert!(
            w.current_row(toys).unwrap().is_none(),
            "toy_emps is now empty"
        );
    }
}
