//! Window state: modes, the per-window record, and rendering.

use crate::browse::BrowseCursor;
use crate::session::SessionId;
use std::fmt;
use wow_forms::FormInstance;
use wow_rel::expr::Expr;
use wow_rel::schema::Schema;
use wow_rel::value::Value;
use wow_tui::geom::Rect;
use wow_tui::tree::WindowId as TuiId;
use wow_tui::widget::Widget;
use wow_views::updatable::Updatability;

/// Identifier of a logical window (a form over a view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WinId(pub u32);

impl fmt::Display for WinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window {}", self.0)
    }
}

/// How the window displays rows while browsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowStyle {
    /// One record at a time, as a form (the classic 1983 presentation).
    #[default]
    Form,
    /// A whole page of records as a grid with a selection bar; editing
    /// still happens on the form, which replaces the grid in Edit/Insert/
    /// Query modes.
    Grid,
}

/// What the window is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Walking the view's rows; the form shows the current row read-only.
    #[default]
    Browse,
    /// The form's writable fields are open for editing the current row.
    Edit,
    /// The form is blank, collecting a new row.
    Insert,
    /// The form is blank, collecting query-by-form restrictions.
    Query,
}

impl Mode {
    /// Status-line name.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Browse => "Browse",
            Mode::Edit => "Edit",
            Mode::Insert => "Insert",
            Mode::Query => "Query",
        }
    }
}

/// How a window's displayed rows were last brought up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshKind {
    /// The initial fill at open time.
    #[default]
    Open,
    /// The view query was re-run (full refresh).
    Full,
    /// The screenful was patched in place from a view delta.
    Delta,
}

impl RefreshKind {
    /// Stable lowercase name (status line, `__wow_windows` rows).
    pub fn name(self) -> &'static str {
        match self {
            RefreshKind::Open => "open",
            RefreshKind::Full => "full",
            RefreshKind::Delta => "delta",
        }
    }
}

/// Compact age display for the status line: seconds up to a minute, then
/// whole minutes (precision nobody reads is just status-bar churn).
fn fmt_age(secs: u64) -> String {
    if secs < 60 {
        format!("{secs}s")
    } else {
        format!("{}m", secs / 60)
    }
}

/// The full state of one window.
#[derive(Debug)]
pub struct WindowState {
    /// Logical id.
    pub id: WinId,
    /// Owning session.
    pub session: SessionId,
    /// The view this window looks through.
    pub view: String,
    /// Updatability proof (None ⇒ the window is read-only).
    pub upd: Option<Updatability>,
    /// Why the window is read-only (empty when updatable).
    pub read_only_reasons: Vec<String>,
    /// The view's schema (bare column names).
    pub schema: Schema,
    /// The live form.
    pub form: FormInstance,
    /// The browse cursor.
    pub cursor: BrowseCursor,
    /// Current mode.
    pub mode: Mode,
    /// The screen window this renders into.
    pub tui: TuiId,
    /// Browse presentation.
    pub style: WindowStyle,
    /// Row image captured when Edit mode was entered.
    pub original: Option<Vec<Value>>,
    /// The active query-by-form restriction, if any.
    pub qbf_pred: Option<Expr>,
    /// Status-line message (errors, confirmations).
    pub status: String,
    /// Set when another window changed data this window may display while
    /// this window couldn't be refreshed (it was mid-edit).
    pub stale: bool,
    /// How the displayed rows were last brought current.
    pub last_refresh: RefreshKind,
    /// When the displayed rows were last brought current.
    pub refreshed_at: std::time::Instant,
    /// Monotonic refresh generation: 1 at open, +1 on every refresh
    /// (delta or full). Remote viewers use it to order pushed screenfuls —
    /// a consumer that only accepts increasing generations can never
    /// regress to an older state, however pushes are coalesced or delayed.
    pub generation: u64,
}

impl WindowState {
    /// Whether the window can write through its view.
    pub fn is_updatable(&self) -> bool {
        self.upd.is_some()
    }

    /// Load the form from the cursor's current row (Browse display).
    pub fn show_current(&mut self) {
        match self.cursor.current_row() {
            Some((_, tuple)) => self.form.fill(&tuple.values),
            None => self.form.clear(),
        }
    }

    /// The one-line status for the window's bottom row.
    pub fn status_line(&self) -> (String, String) {
        let left = if self.status.is_empty() {
            let ro = if self.is_updatable() {
                ""
            } else {
                " [read-only]"
            };
            let q = if self.qbf_pred.is_some() {
                " [query]"
            } else {
                ""
            };
            let stale = if self.stale { " [stale]" } else { "" };
            // Freshness: which refresh path last ran and how old the rows
            // are. Suppressed until the first refresh — an untouched window
            // is exactly as fresh as its open.
            let fresh = match self.last_refresh {
                RefreshKind::Open => String::new(),
                kind => format!(
                    " [{} {}]",
                    kind.name(),
                    fmt_age(self.refreshed_at.elapsed().as_secs())
                ),
            };
            format!("{}{ro}{q}{stale}{fresh}", self.mode.name())
        } else {
            self.status.clone()
        };
        let right = match (self.cursor.position(), self.cursor.known_len()) {
            (Some(p), Some(n)) => format!("row {}/{}", p + 1, n),
            (Some(p), None) => format!("row {}", p + 1),
            (None, Some(0)) | (None, None) => "no rows".to_string(),
            (None, Some(n)) => format!("{n} rows"),
        };
        (left, right)
    }

    /// Paint the window's interior: the form (or grid) plus the status row.
    pub fn render_into(&mut self, tui_win: &mut wow_tui::window::Window) {
        let local = tui_win.local();
        let buf = tui_win.content_mut();
        buf.clear();
        if local.is_empty() {
            return;
        }
        let body = Rect::new(local.x, local.y, local.w, local.h.saturating_sub(1));
        let active = matches!(self.mode, Mode::Edit | Mode::Insert | Mode::Query);
        let grid_browse = self.style == WindowStyle::Grid && self.mode == Mode::Browse;
        if grid_browse {
            self.render_grid(buf, body);
        } else {
            self.form.render(buf, body, active);
        }
        let (left, right) = self.status_line();
        let mut bar = wow_tui::widget::StatusBar::new();
        bar.set(left, right);
        bar.render(buf, local.row(local.h - 1), false);
    }

    /// Grid presentation of the cursor's current page.
    fn render_grid(&self, buf: &mut wow_tui::buffer::ScreenBuffer, area: Rect) {
        use wow_tui::widget::{TableGrid, Widget};
        let headers: Vec<String> = self
            .form
            .spec
            .fields
            .iter()
            .map(|f| f.caption.clone())
            .collect();
        let widths: Vec<u16> = self.form.spec.fields.iter().map(|f| f.width).collect();
        let mut grid = TableGrid::new(headers, widths);
        let rows: Vec<Vec<String>> = self
            .cursor
            .page_rows()
            .iter()
            .map(|(_, t)| {
                t.values
                    .iter()
                    .zip(&self.form.spec.fields)
                    .map(|(v, f)| wow_forms::format::display_cell(v, f.ty, f.width))
                    .collect()
            })
            .collect();
        grid.set_rows(rows);
        grid.select(self.cursor.pos_in_page());
        grid.render(buf, area, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names() {
        assert_eq!(Mode::Browse.name(), "Browse");
        assert_eq!(Mode::Query.name(), "Query");
        assert_eq!(Mode::default(), Mode::Browse);
    }

    #[test]
    fn win_id_display() {
        assert_eq!(WinId(4).to_string(), "window 4");
    }
}
