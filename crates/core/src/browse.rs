//! Browse cursors: how a window walks its view's extension.
//!
//! Three strategies, matching the Table 2 comparison:
//!
//! * [`BrowseCursor::indexed`] — **incremental**: fetch one screenful at a
//!   time through the base table's primary-key B+tree, filtering and
//!   projecting through the view as pages stream in. Opening a window on a
//!   million-row relation costs one page fetch.
//! * [`BrowseCursor::streamed`] — **incremental for join views**: fetch one
//!   screenful at a time by pushing `LIMIT page OFFSET k·page` through the
//!   streaming executor; the join stops producing the moment the page is
//!   full, so opening a window never materializes the whole extension.
//! * [`BrowseCursor::materialized`] — **the baseline**: run the whole view
//!   query (optionally sorted) up front and page through the copy.
//!
//! Cursor positions survive refreshes: after another window commits a
//! write, [`BrowseCursor::refresh`] re-fetches the current page in place.

use crate::error::{WowError, WowResult};
use std::cmp::Ordering;
use wow_rel::db::Database;
use wow_rel::eval::{eval, eval_pred};
use wow_rel::exec::infer_type;
use wow_rel::expr::Expr;
use wow_rel::schema::{Column, Schema};
use wow_rel::tuple::Tuple;
use wow_rel::types::DataType;
use wow_storage::Rid;
use wow_views::delta::{DeltaRow, ViewDelta};
use wow_views::expand::{run_view_query, ViewQuery};
use wow_views::translate::view_rows_with_rids;
use wow_views::updatable::Updatability;
use wow_views::ViewCatalog;

/// One browse row: the view-shaped tuple plus (for updatable views) the
/// base rid behind it.
pub type BrowseRow = (Option<Rid>, Tuple);

/// The view-shaped schema an updatable view presents (bare column names).
pub fn view_schema_of(db: &Database, upd: &Updatability) -> WowResult<Schema> {
    let info = db.catalog().table(&upd.base_table)?.clone();
    let base = info.schema.qualified(&upd.base_alias);
    let mut columns = Vec::with_capacity(upd.column_names.len());
    for (name, expr) in upd.column_names.iter().zip(&upd.target_exprs) {
        let ty = infer_type(expr, &base).unwrap_or(DataType::Text);
        let nullable = match upd.column_map[columns.len()] {
            Some(bcol) => info.schema.column(bcol).nullable,
            None => true,
        };
        columns.push(Column {
            name: name.clone(),
            ty,
            nullable,
        });
    }
    Ok(Schema::new(columns))
}

/// State for the incremental, index-ordered strategy.
#[derive(Debug, Clone)]
pub struct Indexed {
    upd: Updatability,
    index: String,
    page_size: usize,
    /// Resolved view restriction over the base row.
    base_pred: Option<Expr>,
    /// Resolved projection over the base row.
    targets: Vec<Expr>,
    /// Extra (QBF) restriction over the *view* row.
    view_pred: Option<Expr>,
    /// `page_starts[i]` = index key strictly before page `i` (None = start).
    page_starts: Vec<Option<Vec<u8>>>,
    page_no: usize,
    /// The current screenful: `(rid, index key, view row)` — the key keeps
    /// delta rows placeable without re-reading the index.
    page: Vec<(Rid, Vec<u8>, Tuple)>,
    /// Key to continue after for the *next* page.
    next_start: Option<Vec<u8>>,
    /// Rows on fully-consumed earlier pages (for position display).
    rows_before: usize,
    /// No further pages exist.
    at_end: bool,
    pos: usize,
}

/// State for the materialize-everything baseline.
#[derive(Debug, Clone)]
pub struct Materialized {
    rows: Vec<BrowseRow>,
    pos: usize,
    /// How to rebuild on refresh.
    view: String,
    query: ViewQuery,
    upd: Option<Updatability>,
}

/// State for the incremental strategy over *non-updatable* (join /
/// aggregate) views: each page is a fresh view query with
/// `LIMIT page_size OFFSET page_no·page_size`, which the optimizer pushes
/// into the streaming executor — production stops once the page fills.
#[derive(Debug, Clone)]
pub struct Streamed {
    view: String,
    /// Restriction/ordering from QBF; `limit` is overwritten per page.
    query: ViewQuery,
    page_size: usize,
    page_no: usize,
    page: Vec<Tuple>,
    pos: usize,
    /// The current page is the last one.
    at_end: bool,
}

/// A window's position in its view.
#[derive(Debug, Clone)]
pub enum BrowseCursor {
    /// Incremental, index-ordered paging.
    Indexed(Indexed),
    /// Incremental, limit-pushdown paging (join/aggregate views).
    Streamed(Streamed),
    /// Materialized result paging.
    Materialized(Materialized),
}

impl BrowseCursor {
    /// Build the incremental cursor over an updatable view, paging through
    /// `index` (the base table's primary-key B+tree). `view_pred` is an
    /// extra restriction over bare view columns (from QBF).
    pub fn indexed(
        db: &mut Database,
        upd: &Updatability,
        index: &str,
        page_size: usize,
        view_pred: Option<Expr>,
    ) -> WowResult<BrowseCursor> {
        let info = db.catalog().table(&upd.base_table)?.clone();
        let base_schema = info.schema.qualified(&upd.base_alias);
        let base_pred = match &upd.base_pred {
            Some(p) => Some(p.clone().resolve(&base_schema)?),
            None => None,
        };
        let targets: Vec<Expr> = upd
            .target_exprs
            .iter()
            .map(|e| e.clone().resolve(&base_schema))
            .collect::<Result<_, _>>()?;
        let view_schema = view_schema_of(db, upd)?;
        let view_pred = match view_pred {
            Some(p) => Some(p.resolve(&view_schema)?),
            None => None,
        };
        let mut ix = Indexed {
            upd: upd.clone(),
            index: index.to_string(),
            page_size: page_size.max(1),
            base_pred,
            targets,
            view_pred,
            page_starts: vec![None],
            page_no: 0,
            page: Vec::new(),
            next_start: None,
            rows_before: 0,
            at_end: false,
            pos: 0,
        };
        ix.fetch_page(db, None)?;
        Ok(BrowseCursor::Indexed(ix))
    }

    /// Build the incremental cursor for a non-updatable (join/aggregate)
    /// view. Any `limit` in `query` is ignored; paging supplies its own.
    /// Rows carry no base rids, so the window is read-only.
    pub fn streamed(
        db: &mut Database,
        vc: &ViewCatalog,
        view: &str,
        query: ViewQuery,
        page_size: usize,
    ) -> WowResult<BrowseCursor> {
        let mut s = Streamed {
            view: view.to_string(),
            query,
            page_size: page_size.max(1),
            page_no: 0,
            page: Vec::new(),
            pos: 0,
            at_end: true,
        };
        s.fetch_page(db, vc, 0)?;
        Ok(BrowseCursor::Streamed(s))
    }

    /// Build the materialized cursor. With an [`Updatability`] proof the
    /// rows carry base rids (edits allowed); without one the window is
    /// read-only.
    pub fn materialized(
        db: &mut Database,
        vc: &ViewCatalog,
        view: &str,
        query: ViewQuery,
        upd: Option<&Updatability>,
    ) -> WowResult<BrowseCursor> {
        let mut m = Materialized {
            rows: Vec::new(),
            pos: 0,
            view: view.to_string(),
            query,
            upd: upd.cloned(),
        };
        m.refill(db, vc)?;
        Ok(BrowseCursor::Materialized(m))
    }

    /// The current row, owned (uniform across strategies).
    pub fn current_row(&self) -> Option<BrowseRow> {
        match self {
            BrowseCursor::Indexed(ix) => ix
                .page
                .get(ix.pos)
                .map(|(rid, _, t)| (Some(*rid), t.clone())),
            BrowseCursor::Streamed(s) => s.page.get(s.pos).map(|t| (None, t.clone())),
            BrowseCursor::Materialized(m) => m.rows.get(m.pos).cloned(),
        }
    }

    /// 0-based global position of the current row, when known.
    pub fn position(&self) -> Option<usize> {
        match self {
            BrowseCursor::Indexed(ix) => {
                if ix.page.is_empty() {
                    None
                } else {
                    Some(ix.rows_before + ix.pos)
                }
            }
            BrowseCursor::Streamed(s) => {
                if s.page.is_empty() {
                    None
                } else {
                    Some(s.page_no * s.page_size + s.pos)
                }
            }
            BrowseCursor::Materialized(m) => {
                if m.rows.is_empty() {
                    None
                } else {
                    Some(m.pos)
                }
            }
        }
    }

    /// Total row count, when the strategy knows it (materialized only).
    pub fn known_len(&self) -> Option<usize> {
        match self {
            BrowseCursor::Indexed(_) | BrowseCursor::Streamed(_) => None,
            BrowseCursor::Materialized(m) => Some(m.rows.len()),
        }
    }

    /// Whether the cursor currently has no row.
    pub fn is_empty(&self) -> bool {
        self.current_row().is_none()
    }

    /// Index of the current row within the page returned by
    /// [`BrowseCursor::page_rows`].
    pub fn pos_in_page(&self) -> usize {
        match self {
            BrowseCursor::Indexed(ix) => ix.pos,
            BrowseCursor::Streamed(s) => s.pos,
            BrowseCursor::Materialized(m) => m.pos % 16,
        }
    }

    /// Advance one row. Returns `false` at the end.
    pub fn next(&mut self, db: &mut Database, vc: &ViewCatalog) -> WowResult<bool> {
        match self {
            BrowseCursor::Indexed(ix) => {
                if ix.pos + 1 < ix.page.len() {
                    ix.pos += 1;
                    return Ok(true);
                }
                if ix.at_end {
                    return Ok(false);
                }
                ix.advance_page(db)
            }
            BrowseCursor::Streamed(s) => {
                if s.pos + 1 < s.page.len() {
                    s.pos += 1;
                    return Ok(true);
                }
                if s.at_end {
                    return Ok(false);
                }
                s.advance_page(db, vc)
            }
            BrowseCursor::Materialized(m) => {
                if m.pos + 1 < m.rows.len() {
                    m.pos += 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Step back one row. Returns `false` at the beginning.
    pub fn prev(&mut self, db: &mut Database, vc: &ViewCatalog) -> WowResult<bool> {
        match self {
            BrowseCursor::Indexed(ix) => {
                if ix.pos > 0 {
                    ix.pos -= 1;
                    return Ok(true);
                }
                if ix.page_no == 0 {
                    return Ok(false);
                }
                ix.retreat_page(db)?;
                ix.pos = ix.page.len().saturating_sub(1);
                Ok(true)
            }
            BrowseCursor::Streamed(s) => {
                if s.pos > 0 {
                    s.pos -= 1;
                    return Ok(true);
                }
                if s.page_no == 0 {
                    return Ok(false);
                }
                let target = s.page_no - 1;
                s.fetch_page(db, vc, target)?;
                s.pos = s.page.len().saturating_sub(1);
                Ok(true)
            }
            BrowseCursor::Materialized(m) => {
                if m.pos > 0 {
                    m.pos -= 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Jump forward one page (a screenful). Returns `false` when already on
    /// the last page.
    pub fn next_page(&mut self, db: &mut Database, vc: &ViewCatalog) -> WowResult<bool> {
        match self {
            BrowseCursor::Indexed(ix) => {
                if ix.at_end {
                    return Ok(false);
                }
                ix.advance_page(db)
            }
            BrowseCursor::Streamed(s) => {
                if s.at_end {
                    return Ok(false);
                }
                s.advance_page(db, vc)
            }
            BrowseCursor::Materialized(m) => {
                let page = 16;
                if m.pos + page < m.rows.len() {
                    m.pos += page;
                    Ok(true)
                } else if m.pos + 1 < m.rows.len() {
                    m.pos = m.rows.len() - 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Jump back one page.
    pub fn prev_page(&mut self, db: &mut Database, vc: &ViewCatalog) -> WowResult<bool> {
        match self {
            BrowseCursor::Indexed(ix) => {
                if ix.page_no == 0 {
                    if ix.pos == 0 {
                        return Ok(false);
                    }
                    ix.pos = 0;
                    return Ok(true);
                }
                ix.retreat_page(db)?;
                Ok(true)
            }
            BrowseCursor::Streamed(s) => {
                if s.page_no == 0 {
                    if s.pos == 0 {
                        return Ok(false);
                    }
                    s.pos = 0;
                    return Ok(true);
                }
                let target = s.page_no - 1;
                s.fetch_page(db, vc, target)?;
                Ok(true)
            }
            BrowseCursor::Materialized(m) => {
                if m.pos == 0 {
                    return Ok(false);
                }
                m.pos = m.pos.saturating_sub(16);
                Ok(true)
            }
        }
    }

    /// Re-fetch the current page after external writes, keeping the
    /// position as stable as the data allows.
    pub fn refresh(&mut self, db: &mut Database, vc: &ViewCatalog) -> WowResult<()> {
        match self {
            BrowseCursor::Indexed(ix) => {
                let start = ix.page_starts[ix.page_no].clone();
                let pos = ix.pos;
                ix.fetch_page(db, start)?;
                ix.pos = pos.min(ix.page.len().saturating_sub(1));
                Ok(())
            }
            BrowseCursor::Streamed(s) => {
                let pos = s.pos;
                let mut page_no = s.page_no;
                s.fetch_page(db, vc, page_no)?;
                // Rows may have vanished; back up to the last surviving page.
                while s.page.is_empty() && page_no > 0 {
                    page_no -= 1;
                    s.fetch_page(db, vc, page_no)?;
                }
                s.pos = pos.min(s.page.len().saturating_sub(1));
                Ok(())
            }
            BrowseCursor::Materialized(m) => {
                let pos = m.pos;
                m.refill(db, vc)?;
                m.pos = pos.min(m.rows.len().saturating_sub(1));
                Ok(())
            }
        }
    }

    /// Apply a view delta to the displayed rows in place instead of
    /// re-running the view query. Returns `false` when the strategy cannot
    /// (streamed cursors, non-updatable materialized views, delta rows
    /// without identity, or a page/delta mismatch) — the caller then falls
    /// back to a full [`BrowseCursor::refresh`].
    pub fn apply_delta(&mut self, db: &mut Database, delta: &ViewDelta) -> WowResult<bool> {
        match self {
            BrowseCursor::Indexed(ix) => ix.apply_delta(db, delta),
            // Streamed pages are a fresh query per screenful; there is no
            // materialized state to patch.
            BrowseCursor::Streamed(_) => Ok(false),
            BrowseCursor::Materialized(m) => m.apply_delta(db, delta),
        }
    }

    /// The rows of the current page (for grid displays).
    pub fn page_rows(&self) -> Vec<BrowseRow> {
        match self {
            BrowseCursor::Indexed(ix) => ix
                .page
                .iter()
                .map(|(rid, _, t)| (Some(*rid), t.clone()))
                .collect(),
            BrowseCursor::Streamed(s) => s.page.iter().map(|t| (None, t.clone())).collect(),
            BrowseCursor::Materialized(m) => {
                let start = (m.pos / 16) * 16;
                m.rows.iter().skip(start).take(16).cloned().collect()
            }
        }
    }
}

impl Indexed {
    /// Fetch the page that starts strictly after `start` into `self.page`,
    /// setting `next_start`/`at_end` for the page after it.
    fn fetch_page(&mut self, db: &mut Database, start: Option<Vec<u8>>) -> WowResult<()> {
        let mut span = wow_obs::span(wow_obs::Op::BrowsePage);
        let info = db.catalog().table(&self.upd.base_table)?.clone();
        self.page.clear();
        self.pos = 0;
        let mut after = start.clone();
        self.at_end = false;
        // Keep pulling index chunks until the page is full (predicates can
        // reject arbitrarily many base rows) or the index runs dry.
        loop {
            let chunk = db.index_scan_page(&self.index, after.as_deref(), self.page_size)?;
            if chunk.is_empty() {
                self.at_end = true;
                break;
            }
            let exhausted_chunk = chunk.len() < self.page_size;
            for (key, rid) in chunk {
                after = Some(key.clone());
                let Some(base) = db.get_row(info.id, rid)? else {
                    continue; // deleted under us
                };
                let keep = match &self.base_pred {
                    Some(p) => eval_pred(p, &base)?,
                    None => true,
                };
                if !keep {
                    continue;
                }
                let mut vals = Vec::with_capacity(self.targets.len());
                for t in &self.targets {
                    vals.push(eval(t, &base)?);
                }
                let view_row = Tuple::new(vals);
                let keep = match &self.view_pred {
                    Some(p) => eval_pred(p, &view_row)?,
                    None => true,
                };
                if !keep {
                    continue;
                }
                self.page.push((rid, key, view_row));
                if self.page.len() == self.page_size {
                    break;
                }
            }
            if self.page.len() == self.page_size {
                break;
            }
            if exhausted_chunk {
                self.at_end = true;
                break;
            }
        }
        self.next_start = after;
        // A full page might still be the last one; that is discovered on
        // the next advance (same trade every cursor implementation makes).
        if self.page.is_empty() {
            self.at_end = true;
        }
        span.arg(self.page.len() as u64);
        Ok(())
    }

    fn advance_page(&mut self, db: &mut Database) -> WowResult<bool> {
        let start = self.next_start.clone();
        let prev_len = self.page.len();
        let prev_start = self.page_starts[self.page_no].clone();
        self.fetch_page(db, start.clone())?;
        if self.page.is_empty() {
            // Walked off the end: restore the previous page.
            self.fetch_page(db, prev_start)?;
            self.pos = self.page.len().saturating_sub(1);
            self.at_end = true;
            return Ok(false);
        }
        self.rows_before += prev_len;
        self.page_no += 1;
        if self.page_starts.len() == self.page_no {
            self.page_starts.push(start);
        } else {
            self.page_starts[self.page_no] = start;
        }
        Ok(true)
    }

    fn retreat_page(&mut self, db: &mut Database) -> WowResult<()> {
        debug_assert!(self.page_no > 0);
        self.page_no -= 1;
        let start = self.page_starts[self.page_no].clone();
        self.fetch_page(db, start)?;
        self.rows_before = self.rows_before.saturating_sub(self.page.len());
        Ok(())
    }

    /// Patch the current page from a view delta: rows keyed before the page
    /// adjust the position counter, rows within the page's key range are
    /// inserted/removed in place, rows beyond it are a later page's problem.
    fn apply_delta(&mut self, db: &mut Database, delta: &ViewDelta) -> WowResult<bool> {
        // Classify every delta row into remove/insert primitives, applying
        // the window's extra QBF restriction on top of the view's own
        // predicate (which the delta already honored).
        let mut removes: Vec<(Rid, Vec<u8>)> = Vec::new();
        let mut inserts: Vec<(Rid, Vec<u8>, Tuple)> = Vec::new();
        {
            let passes = |row: &Tuple| -> WowResult<bool> {
                Ok(match &self.view_pred {
                    Some(p) => eval_pred(p, row)?,
                    None => true,
                })
            };
            let ident = |dr: &DeltaRow| Some((dr.rid?, dr.key.clone()?));
            for dr in &delta.inserted {
                if !passes(&dr.row)? {
                    continue;
                }
                let Some((rid, key)) = ident(dr) else {
                    return Ok(false);
                };
                inserts.push((rid, key, dr.row.clone()));
            }
            for dr in &delta.deleted {
                if !passes(&dr.row)? {
                    continue;
                }
                let Some((rid, key)) = ident(dr) else {
                    return Ok(false);
                };
                removes.push((rid, key));
            }
            for (old, new) in &delta.updated {
                if passes(&old.row)? {
                    let Some((rid, key)) = ident(old) else {
                        return Ok(false);
                    };
                    removes.push((rid, key));
                }
                if passes(&new.row)? {
                    let Some((rid, key)) = ident(new) else {
                        return Ok(false);
                    };
                    inserts.push((rid, key, new.row.clone()));
                }
            }
        }
        // Snapshot for rollback: a mid-apply mismatch must not leave the
        // position bookkeeping half-adjusted before the caller's fallback
        // refresh (which re-fetches the page but not `rows_before`).
        let saved = (
            self.page.clone(),
            self.pos,
            self.rows_before,
            self.next_start.clone(),
            self.at_end,
        );
        let start = self.page_starts[self.page_no].clone();
        let before_start = |key: &[u8]| match &start {
            Some(s) => key <= s.as_slice(),
            None => false,
        };
        // The page covers keys in `(start, next_start]` — or to infinity on
        // the last page.
        let in_page = |key: &[u8], at_end: bool, next_start: &Option<Vec<u8>>| {
            at_end
                || match next_start {
                    Some(ns) => key <= ns.as_slice(),
                    None => true,
                }
        };
        // The current row is tracked by identity (rid) across the patch; a
        // running index is the fallback when the row itself vanished.
        let cur_rid = self.page.get(self.pos).map(|(r, _, _)| *r);
        let mut cur_idx = self.pos;
        for (rid, key) in removes {
            if before_start(&key) {
                self.rows_before = self.rows_before.saturating_sub(1);
            } else if in_page(&key, self.at_end, &self.next_start) {
                let Some(idx) = self.page.iter().position(|(r, _, _)| *r == rid) else {
                    // The page and the delta disagree; re-query instead of
                    // guessing.
                    (
                        self.page,
                        self.pos,
                        self.rows_before,
                        self.next_start,
                        self.at_end,
                    ) = saved;
                    return Ok(false);
                };
                self.page.remove(idx);
                if idx < cur_idx {
                    cur_idx -= 1;
                }
            }
        }
        for (rid, key, row) in inserts {
            if before_start(&key) {
                self.rows_before += 1;
            } else if in_page(&key, self.at_end, &self.next_start) {
                let idx = self
                    .page
                    .partition_point(|(_, k, _)| k.as_slice() <= key.as_slice());
                self.page.insert(idx, (rid, key, row));
                if idx <= cur_idx && cur_rid.is_some() {
                    cur_idx += 1;
                }
            }
        }
        self.pos = cur_rid
            .and_then(|rid| self.page.iter().position(|(r, _, _)| *r == rid))
            .unwrap_or_else(|| cur_idx.min(self.page.len().saturating_sub(1)));
        // Spill: the page holds one screenful; extra rows belong to the
        // next page, which now starts after our new last key.
        if self.page.len() > self.page_size {
            self.page.truncate(self.page_size);
            self.next_start = self.page.last().map(|(_, k, _)| k.clone());
            self.at_end = false;
        }
        self.pos = self.pos.min(self.page.len().saturating_sub(1));
        // Backfill: removals may have made room for rows sitting beyond the
        // old page boundary; one page-local refetch restores a full
        // screenful (still incremental — no full view re-query).
        if self.page.len() < self.page_size && !self.at_end {
            let pos = self.pos;
            self.fetch_page(db, start)?;
            self.pos = pos.min(self.page.len().saturating_sub(1));
        }
        Ok(true)
    }
}

impl Streamed {
    /// Fetch page `page_no` by running the view query with
    /// `LIMIT page_size+1 OFFSET page_no·page_size` — the extra row tells
    /// us whether a further page exists without another round trip.
    fn fetch_page(&mut self, db: &mut Database, vc: &ViewCatalog, page_no: usize) -> WowResult<()> {
        let mut span = wow_obs::span(wow_obs::Op::BrowsePage);
        let mut q = self.query.clone();
        q.limit = Some((page_no * self.page_size, self.page_size + 1));
        let mut tuples = run_view_query(db, vc, &self.view, &q)?.tuples;
        self.at_end = tuples.len() <= self.page_size;
        tuples.truncate(self.page_size);
        span.arg(tuples.len() as u64);
        self.page = tuples;
        self.page_no = page_no;
        self.pos = 0;
        Ok(())
    }

    fn advance_page(&mut self, db: &mut Database, vc: &ViewCatalog) -> WowResult<bool> {
        let prev = self.page_no;
        self.fetch_page(db, vc, prev + 1)?;
        if self.page.is_empty() {
            // Walked off the end: restore the previous page.
            self.fetch_page(db, vc, prev)?;
            self.pos = self.page.len().saturating_sub(1);
            self.at_end = true;
            return Ok(false);
        }
        Ok(true)
    }
}

impl Materialized {
    fn refill(&mut self, db: &mut Database, vc: &ViewCatalog) -> WowResult<()> {
        let mut span = wow_obs::span(wow_obs::Op::BrowsePage);
        self.rows = match &self.upd {
            Some(upd) => {
                // Updatable: fetch with rids, filter/sort client-side.
                let mut rows = view_rows_with_rids(db, upd)?;
                if let Some(pred) = &self.query.pred {
                    let schema = view_schema_of(db, upd)?;
                    let resolved = pred.clone().resolve(&schema)?;
                    let mut err = None;
                    rows.retain(|(_, t)| match eval_pred(&resolved, t) {
                        Ok(k) => k,
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    });
                    if let Some(e) = err {
                        return Err(WowError::Rel(e));
                    }
                }
                if !self.query.sort.is_empty() {
                    let schema = view_schema_of(db, upd)?;
                    let keys: Vec<(usize, bool)> = self
                        .query
                        .sort
                        .iter()
                        .map(|k| {
                            Ok::<_, wow_rel::RelError>((schema.resolve(&k.column)?, k.ascending))
                        })
                        .collect::<Result<_, _>>()?;
                    rows.sort_by(|a, b| wow_rel::exec::sort::compare(&a.1, &b.1, &keys));
                }
                rows.into_iter().map(|(rid, t)| (Some(rid), t)).collect()
            }
            None => {
                let result = run_view_query(db, vc, &self.view, &self.query)?;
                result.tuples.into_iter().map(|t| (None, t)).collect()
            }
        };
        span.arg(self.rows.len() as u64);
        Ok(())
    }

    /// Patch the materialized rows from a view delta: remove by rid, insert
    /// at the position a full refill would have produced (heap order when
    /// unsorted, the resolved sort keys with rid tie-break otherwise).
    fn apply_delta(&mut self, db: &mut Database, delta: &ViewDelta) -> WowResult<bool> {
        // Without an updatability proof rows carry no rids to patch by.
        let Some(upd) = self.upd.clone() else {
            return Ok(false);
        };
        let schema = view_schema_of(db, &upd)?;
        let pred = match &self.query.pred {
            Some(p) => Some(p.clone().resolve(&schema)?),
            None => None,
        };
        let keys: Vec<(usize, bool)> = self
            .query
            .sort
            .iter()
            .map(|k| Ok::<_, wow_rel::RelError>((schema.resolve(&k.column)?, k.ascending)))
            .collect::<Result<_, _>>()?;
        let passes = |row: &Tuple| -> WowResult<bool> {
            Ok(match &pred {
                Some(p) => eval_pred(p, row)?,
                None => true,
            })
        };
        let mut removes: Vec<Rid> = Vec::new();
        let mut inserts: Vec<(Rid, Tuple)> = Vec::new();
        for dr in &delta.inserted {
            if !passes(&dr.row)? {
                continue;
            }
            let Some(rid) = dr.rid else {
                return Ok(false);
            };
            inserts.push((rid, dr.row.clone()));
        }
        for dr in &delta.deleted {
            if !passes(&dr.row)? {
                continue;
            }
            let Some(rid) = dr.rid else {
                return Ok(false);
            };
            removes.push(rid);
        }
        for (old, new) in &delta.updated {
            if passes(&old.row)? {
                let Some(rid) = old.rid else {
                    return Ok(false);
                };
                removes.push(rid);
            }
            if passes(&new.row)? {
                let Some(rid) = new.rid else {
                    return Ok(false);
                };
                inserts.push((rid, new.row.clone()));
            }
        }
        // Track the current row by identity across the patch, with a
        // running index as the fallback when it was itself removed.
        let cur_rid = self.rows.get(self.pos).and_then(|(r, _)| *r);
        let mut cur_idx = self.pos;
        for rid in removes {
            let Some(idx) = self.rows.iter().position(|(r, _)| *r == Some(rid)) else {
                // Mismatch: the caller's fallback refill rebuilds everything,
                // so partially applied removals are harmless here.
                return Ok(false);
            };
            self.rows.remove(idx);
            if idx < cur_idx {
                cur_idx -= 1;
            }
        }
        for (rid, row) in inserts {
            let idx = if keys.is_empty() {
                // `view_rows_with_rids` yields heap-scan order, which is rid
                // order (pages ascending, slots ascending).
                self.rows
                    .partition_point(|(r, _)| r.is_some_and(|r| r <= rid))
            } else {
                self.rows.partition_point(|(r, t)| {
                    match wow_rel::exec::sort::compare(t, &row, &keys) {
                        Ordering::Less => true,
                        Ordering::Equal => r.is_some_and(|r| r <= rid),
                        Ordering::Greater => false,
                    }
                })
            };
            self.rows.insert(idx, (Some(rid), row));
            if idx <= cur_idx && cur_rid.is_some() {
                cur_idx += 1;
            }
        }
        self.pos = cur_rid
            .and_then(|rid| self.rows.iter().position(|(r, _)| *r == Some(rid)))
            .unwrap_or_else(|| cur_idx.min(self.rows.len().saturating_sub(1)));
        Ok(true)
    }
}
