//! The [`World`]: one shared database, many windows onto it.

use crate::browse::{view_schema_of, BrowseCursor};
use crate::config::WorldConfig;
use crate::error::{WowError, WowResult};
use crate::locks::{LockManager, LockMode, LockOutcome};
use crate::session::{Session, SessionId};
use crate::undo::UndoStack;
use crate::window_mgr::{Mode, WinId, WindowState};
use std::collections::BTreeMap;
use wow_forms::compiler::compile_form;
use wow_forms::FormInstance;
use wow_rel::db::Database;
use wow_rel::tuple::Tuple;
use wow_tui::buffer::Patch;
use wow_tui::damage::DamageTracker;
use wow_tui::event::Key;
use wow_tui::geom::Rect;
use wow_tui::tree::WindowTree;
use wow_views::expand::{view_schema, ViewQuery};
use wow_views::updatable::{analyze, why_not};
use wow_views::{DepIndex, ViewCatalog, ViewDef};

/// Counters the benches and the status surface read.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorldStats {
    /// Through-window writes committed.
    pub commits: u64,
    /// Windows refreshed by propagation.
    pub windows_refreshed: u64,
    /// Propagation passes run.
    pub propagations: u64,
    /// Windows refreshed by applying a view delta in place.
    pub delta_refreshes: u64,
    /// Windows refreshed by re-running their view query (fallback).
    pub full_refreshes: u64,
    /// View-delta rows applied to browse cursors.
    pub delta_rows: u64,
    /// Frames rendered.
    pub frames: u64,
    /// Cells emitted by damage-tracked rendering.
    pub cells_emitted: u64,
}

impl WorldStats {
    /// Copy out the current values — pair with [`WorldStats::since`] so a
    /// warm-path measurement needs no mutable access to zero counters.
    pub fn snapshot(&self) -> WorldStats {
        *self
    }

    /// The activity accumulated since an earlier snapshot (field-wise
    /// saturating difference).
    pub fn since(&self, base: &WorldStats) -> WorldStats {
        WorldStats {
            commits: self.commits.saturating_sub(base.commits),
            windows_refreshed: self
                .windows_refreshed
                .saturating_sub(base.windows_refreshed),
            propagations: self.propagations.saturating_sub(base.propagations),
            delta_refreshes: self.delta_refreshes.saturating_sub(base.delta_refreshes),
            full_refreshes: self.full_refreshes.saturating_sub(base.full_refreshes),
            delta_rows: self.delta_rows.saturating_sub(base.delta_rows),
            frames: self.frames.saturating_sub(base.frames),
            cells_emitted: self.cells_emitted.saturating_sub(base.cells_emitted),
        }
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        *self = WorldStats::default();
    }
}

/// One window brought current by a refresh — the unit the network layer
/// turns into a `WindowRefreshed` push frame. Recording is off by default
/// (zero cost for embedded single-process use); a server turns it on with
/// [`World::enable_refresh_events`] and drains the log after every request
/// it executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshEvent {
    /// The window that was refreshed.
    pub win: WinId,
    /// The session owning that window.
    pub session: SessionId,
    /// How it was brought current (delta patch or full re-query).
    pub kind: crate::window_mgr::RefreshKind,
    /// The window's refresh generation *after* this refresh. Strictly
    /// increasing per window; consumers use it to coalesce (latest wins)
    /// and to assert they never observe an older state after a newer one.
    pub generation: u64,
}

/// How a window's browse cursor is chosen at open time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CursorStrategy {
    /// Indexed when the base table has a primary-key index, materialized
    /// for key-less updatable views, streamed otherwise.
    #[default]
    Auto,
    /// Force a fully materialized cursor (benches measure the O(N) refill
    /// baseline against it; also the only strategy that holds a whole join
    /// result).
    Materialized,
}

/// The world: database, views, forms, sessions, windows, locks, screen.
pub struct World {
    cfg: WorldConfig,
    db: Database,
    views: ViewCatalog,
    /// Cached view → base-table map used by write propagation; invalidated
    /// automatically when either catalog's generation moves (DDL).
    deps: DepIndex,
    locks: LockManager,
    sessions: BTreeMap<SessionId, Session>,
    undo: BTreeMap<SessionId, UndoStack>,
    pub(crate) windows: BTreeMap<WinId, WindowState>,
    tree: WindowTree,
    damage: DamageTracker,
    next_session: u32,
    next_window: u32,
    /// Cascade offset for default window placement.
    cascade: u16,
    /// Aggregate counters.
    pub stats: WorldStats,
    /// When set, every window refresh appends a [`RefreshEvent`] here for
    /// [`World::take_refresh_events`] to drain.
    notify_refreshes: bool,
    refresh_events: Vec<RefreshEvent>,
    /// Live-connection rows for the `__wow_connections` system view,
    /// supplied by an embedding network server (none when embedded).
    conn_provider: Option<crate::sys::ConnectionsProvider>,
}

impl World {
    /// A fresh world over an in-memory database.
    pub fn new(cfg: WorldConfig) -> World {
        World::with_db(cfg, Database::in_memory())
    }

    /// Open (or create) a durable world in `dir`, running crash recovery
    /// first: the last checkpoint is loaded and the committed tail of the
    /// WAL replayed (see [`wow_rel::durable`]). What recovery did is
    /// readable via [`wow_rel::db::Database::recovery_report`] and the
    /// `recovery.*` gauges of `__wow_metrics`.
    pub fn open_durable(cfg: WorldConfig, dir: &std::path::Path) -> WowResult<World> {
        let mut db = Database::open_durable(dir)?;
        db.set_checkpoint_every(wow_rel::durable::resolve_checkpoint_every(
            cfg.checkpoint_every,
        ));
        Ok(World::with_db(cfg, db))
    }

    /// Take a durable checkpoint now (snapshot + WAL rotation). Errors on
    /// worlds that were not opened with [`World::open_durable`] or while a
    /// database transaction is open.
    pub fn checkpoint_durable(&mut self) -> WowResult<()> {
        self.db.checkpoint_durable()?;
        Ok(())
    }

    /// A world over a caller-prepared database (e.g. WAL-enabled).
    pub fn with_db(cfg: WorldConfig, mut db: Database) -> World {
        db.set_workers(wow_par::resolve_workers(cfg.workers));
        db.set_vectorized(wow_rel::db::resolve_vectorized(cfg.vectorized));
        wow_obs::tracer()
            .set_slow_threshold_ns(wow_obs::resolve_slow_threshold_ns(cfg.slow_query_ns));
        World {
            cfg,
            db,
            views: ViewCatalog::new(),
            deps: DepIndex::new(),
            locks: LockManager::new(),
            sessions: BTreeMap::new(),
            undo: BTreeMap::new(),
            windows: BTreeMap::new(),
            tree: WindowTree::new(),
            damage: DamageTracker::new(),
            next_session: 1,
            next_window: 1,
            cascade: 0,
            stats: WorldStats::default(),
            notify_refreshes: false,
            refresh_events: Vec::new(),
            conn_provider: None,
        }
    }

    /// Turn refresh-event recording on or off. While on, every window
    /// refresh (delta or full, whatever triggered it) appends a
    /// [`RefreshEvent`]; the embedding server drains them with
    /// [`World::take_refresh_events`] after each request it executes and
    /// turns them into push notifications. Turning recording off clears
    /// any undrained events.
    pub fn enable_refresh_events(&mut self, on: bool) {
        self.notify_refreshes = on;
        if !on {
            self.refresh_events.clear();
        }
    }

    /// Drain the refresh events recorded since the last drain.
    pub fn take_refresh_events(&mut self) -> Vec<RefreshEvent> {
        std::mem::take(&mut self.refresh_events)
    }

    /// Mark a window brought current: bump its generation, stamp the
    /// refresh kind/time, clear staleness, reload the form in Browse mode,
    /// and (when event recording is on) log a [`RefreshEvent`]. Every
    /// refresh path funnels through here so generations are monotonic no
    /// matter which path ran.
    pub(crate) fn note_refresh(&mut self, win: WinId, kind: crate::window_mgr::RefreshKind) {
        let Some(w) = self.windows.get_mut(&win) else {
            return;
        };
        w.generation += 1;
        w.last_refresh = kind;
        w.refreshed_at = std::time::Instant::now();
        w.stale = false;
        if matches!(w.mode, Mode::Browse) {
            w.show_current();
        }
        let event = RefreshEvent {
            win,
            session: w.session,
            kind,
            generation: w.generation,
        };
        if self.notify_refreshes {
            self.refresh_events.push(event);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// The database (read).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The database (write) — setup/DDL path; windows do not see external
    /// writes until their next refresh, exactly like 1983 terminals.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The view catalog.
    pub fn views(&self) -> &ViewCatalog {
        &self.views
    }

    /// The cached view-dependency index (inspection; benches read its
    /// rebuild counter to assert the warm path recomputes nothing).
    pub fn dep_index(&self) -> &DepIndex {
        &self.deps
    }

    /// Split borrow used by propagation: database + view catalog + windows
    /// (read) alongside the dependency cache (write).
    pub(crate) fn dep_parts(
        &mut self,
    ) -> (
        &Database,
        &ViewCatalog,
        &BTreeMap<WinId, WindowState>,
        &mut DepIndex,
    ) {
        (&self.db, &self.views, &self.windows, &mut self.deps)
    }

    /// Split borrow used by delta computation: database (write — residual
    /// queries bump probe counters) + view catalog alongside the plan cache.
    pub(crate) fn delta_parts(&mut self) -> (&mut Database, &ViewCatalog, &mut DepIndex) {
        (&mut self.db, &self.views, &mut self.deps)
    }

    /// The lock manager (inspection).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Install (or clear) the provider behind the `__wow_connections`
    /// system view. A network server hands in a closure over its live
    /// connection registry; `sys_sync` calls it to materialize one row per
    /// connection. With no provider the view exists but is empty.
    pub fn set_connections_provider(&mut self, p: Option<crate::sys::ConnectionsProvider>) {
        self.conn_provider = p;
    }

    pub(crate) fn connection_rows(&self) -> Vec<crate::sys::ConnectionInfo> {
        self.conn_provider.as_ref().map(|p| p()).unwrap_or_default()
    }

    /// Split borrow used by the mode modules: database + views + one
    /// window, simultaneously.
    pub(crate) fn parts(
        &mut self,
        win: WinId,
    ) -> WowResult<(&mut Database, &ViewCatalog, &mut WindowState)> {
        let w = self
            .windows
            .get_mut(&win)
            .ok_or(WowError::NoSuchWindow(win.0))?;
        Ok((&mut self.db, &self.views, w))
    }

    /// Define (and register) a view from QUEL source:
    /// `RANGE OF e IS emp RETRIEVE (...) WHERE ...`.
    pub fn define_view(&mut self, name: &str, src: &str) -> WowResult<()> {
        let def = ViewDef::parse(name, src)?;
        // Every range must resolve to a table or an existing view.
        for (_, t) in &def.ranges {
            if !self.db.catalog().has_table(t) && !self.views.has(t) {
                return Err(WowError::Rel(wow_rel::RelError::NoSuchTable(t.clone())));
            }
        }
        self.views.register(def)?;
        Ok(())
    }

    /// Replace a view's definition (drop + re-register atomically: the old
    /// definition is restored if the new one is rejected). Windows already
    /// open on the view pick up the new definition at their next refresh,
    /// and the dependency cache re-derives itself before the next
    /// propagation.
    pub fn redefine_view(&mut self, name: &str, src: &str) -> WowResult<()> {
        let def = ViewDef::parse(name, src)?;
        for (_, t) in &def.ranges {
            if t != name && !self.db.catalog().has_table(t) && !self.views.has(t) {
                return Err(WowError::Rel(wow_rel::RelError::NoSuchTable(t.clone())));
            }
        }
        let old = self.views.remove(name)?;
        if let Err(e) = self.views.register(def) {
            self.views
                .register(old)
                .expect("restoring the prior definition");
            return Err(e.into());
        }
        Ok(())
    }

    // -- Sessions ---------------------------------------------------------------

    /// Open a session.
    pub fn open_session(&mut self) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(id, Session::new());
        self.undo.insert(id, UndoStack::new(self.cfg.undo_depth));
        id
    }

    /// Close a session: closes its windows, releases its locks.
    pub fn close_session(&mut self, session: SessionId) -> WowResult<()> {
        let s = self
            .sessions
            .remove(&session)
            .ok_or(WowError::NoSuchSession(session.0))?;
        for win in s.windows {
            if let Some(state) = self.windows.remove(&win) {
                self.tree.close(state.tui);
            }
        }
        self.locks.release_all(session.0);
        self.undo.remove(&session);
        Ok(())
    }

    /// The open sessions.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.keys().copied().collect()
    }

    pub(crate) fn session_mut(&mut self, session: SessionId) -> WowResult<&mut Session> {
        self.sessions
            .get_mut(&session)
            .ok_or(WowError::NoSuchSession(session.0))
    }

    pub(crate) fn undo_stack(&mut self, session: SessionId) -> WowResult<&mut UndoStack> {
        self.undo
            .get_mut(&session)
            .ok_or(WowError::NoSuchSession(session.0))
    }

    // -- Locking -------------------------------------------------------------------

    /// Take a lock for a session, mapping denial to errors. No-op when
    /// locking is disabled in the config (the Table 5 baseline).
    pub(crate) fn lock(
        &mut self,
        session: SessionId,
        table: &str,
        mode: LockMode,
    ) -> WowResult<()> {
        if !self.cfg.locking {
            return Ok(());
        }
        match self.locks.acquire(session.0, table, mode) {
            LockOutcome::Granted => Ok(()),
            LockOutcome::Conflict { blockers } => Err(WowError::LockConflict {
                table: table.to_string(),
                blocker: blockers.first().copied().unwrap_or(0),
            }),
            LockOutcome::Deadlock => Err(WowError::Deadlock {
                table: table.to_string(),
            }),
        }
    }

    /// Try to take a lock explicitly (long transactions, tests, benches).
    /// Returns whether the lock was granted — always `true` when locking is
    /// disabled, which is exactly the unsafe baseline Table 5 measures.
    pub fn try_lock(&mut self, session: SessionId, table: &str, mode: LockMode) -> bool {
        self.lock(session, table, mode).is_ok()
    }

    /// Release every lock a session holds (end of its transaction).
    pub fn release_locks(&mut self, session: SessionId) {
        self.locks.release_all(session.0);
    }

    // -- Windows -----------------------------------------------------------------

    /// Open a window on a view. `rect` defaults to a cascaded placement.
    pub fn open_window(
        &mut self,
        session: SessionId,
        view: &str,
        rect: Option<Rect>,
    ) -> WowResult<WinId> {
        self.open_window_styled(session, view, rect, crate::window_mgr::WindowStyle::Form)
    }

    /// Open a window with an explicit browse presentation (form or grid).
    pub fn open_window_styled(
        &mut self,
        session: SessionId,
        view: &str,
        rect: Option<Rect>,
        style: crate::window_mgr::WindowStyle,
    ) -> WowResult<WinId> {
        self.open_window_using(session, view, rect, style, CursorStrategy::Auto)
    }

    /// Open a window with an explicit cursor strategy (benches force
    /// `Materialized` to measure the full-refill baseline).
    pub fn open_window_using(
        &mut self,
        session: SessionId,
        view: &str,
        rect: Option<Rect>,
        style: crate::window_mgr::WindowStyle,
        strategy: CursorStrategy,
    ) -> WowResult<WinId> {
        if !self.sessions.contains_key(&session) {
            return Err(WowError::NoSuchSession(session.0));
        }
        let mut span = wow_obs::span(wow_obs::Op::BrowseOpen);
        // System views materialize the world's own runtime state: create
        // and fill their backing tables before the standard machinery runs,
        // then everything below works unchanged.
        let sys = crate::sys::is_sys_view(view);
        if sys {
            self.sys_sync()?;
        }
        // Updatability decides the cursor strategy and writability.
        let (upd, reasons) = match analyze(&self.db, &self.views, view) {
            Ok(u) => (Some(u), Vec::new()),
            Err(wow_views::ViewError::NotUpdatable { .. }) => {
                (None, why_not(&self.db, &self.views, view))
            }
            Err(other) => return Err(other.into()),
        };
        // System windows are read-only regardless of what updatability
        // analysis says about their (perfectly ordinary) backing tables:
        // writing metrics through a form is meaningless. They also force a
        // materialized cursor — a stable snapshot of state that changes
        // under the reader's feet.
        let (upd, reasons, strategy) = if sys {
            (
                None,
                vec!["system tables are read-only".to_string()],
                CursorStrategy::Materialized,
            )
        } else {
            (upd, reasons, strategy)
        };
        let (schema, cursor) = match &upd {
            Some(u) => {
                let schema = view_schema_of(&self.db, u)?;
                let pk_index = format!("pk_{}", u.base_table);
                let use_index = matches!(strategy, CursorStrategy::Auto)
                    && self.db.catalog().index(&pk_index).is_ok();
                let cursor = if use_index {
                    BrowseCursor::indexed(&mut self.db, u, &pk_index, self.cfg.page_size, None)?
                } else {
                    BrowseCursor::materialized(
                        &mut self.db,
                        &self.views,
                        view,
                        ViewQuery::default(),
                        Some(u),
                    )?
                };
                (schema, cursor)
            }
            None => {
                // Join/aggregate views have no base rids to seek by, but
                // they still open incrementally: the streamed cursor pages
                // through limit pushdown, so the first screenful is all the
                // join ever produces.
                let schema = view_schema(&self.db, &self.views, view)?;
                let cursor = match strategy {
                    CursorStrategy::Materialized => BrowseCursor::materialized(
                        &mut self.db,
                        &self.views,
                        view,
                        ViewQuery::default(),
                        None,
                    )?,
                    CursorStrategy::Auto => BrowseCursor::streamed(
                        &mut self.db,
                        &self.views,
                        view,
                        ViewQuery::default(),
                        self.cfg.page_size,
                    )?,
                };
                (schema, cursor)
            }
        };
        // Writable mask: updatable views expose their plain base columns.
        let writable: Vec<bool> = match &upd {
            Some(u) => (0..schema.len()).map(|i| u.is_writable(i)).collect(),
            None => vec![false; schema.len()],
        };
        // A designer-stored form (if one was saved to the database)
        // overrides the compiled default.
        let spec = match self.load_form_spec(view) {
            Some(stored) if stored.fields.len() == schema.len() => stored,
            _ => compile_form(view, view, &schema, &writable),
        };
        let form = FormInstance::new(spec);
        let rect = rect.unwrap_or_else(|| {
            let r = Rect::new(
                2 + self.cascade as i32 * 3,
                1 + self.cascade as i32,
                46,
                (schema.len() as u16 + 4)
                    .min(self.cfg.screen.h.saturating_sub(2))
                    .max(5),
            );
            self.cascade = (self.cascade + 1) % 8;
            r
        });
        let tui = self.tree.create(rect, view);
        let id = WinId(self.next_window);
        self.next_window += 1;
        let mut state = WindowState {
            id,
            session,
            view: view.to_string(),
            upd,
            read_only_reasons: reasons,
            schema,
            form,
            cursor,
            mode: Mode::Browse,
            tui,
            style,
            original: None,
            qbf_pred: None,
            status: String::new(),
            stale: false,
            last_refresh: crate::window_mgr::RefreshKind::Open,
            refreshed_at: std::time::Instant::now(),
            generation: 1,
        };
        state.show_current();
        self.windows.insert(id, state);
        self.session_mut(session)?.add_window(id);
        span.arg(id.0 as u64);
        Ok(id)
    }

    /// Close a window.
    pub fn close_window(&mut self, win: WinId) -> WowResult<()> {
        let state = self
            .windows
            .remove(&win)
            .ok_or(WowError::NoSuchWindow(win.0))?;
        self.tree.close(state.tui);
        if let Ok(s) = self.session_mut(state.session) {
            s.remove_window(win);
        }
        Ok(())
    }

    /// Borrow a window's state.
    pub fn window(&self, win: WinId) -> WowResult<&WindowState> {
        self.windows.get(&win).ok_or(WowError::NoSuchWindow(win.0))
    }

    /// Mutably borrow a window's state.
    pub fn window_mut(&mut self, win: WinId) -> WowResult<&mut WindowState> {
        self.windows
            .get_mut(&win)
            .ok_or(WowError::NoSuchWindow(win.0))
    }

    /// All open windows.
    pub fn window_ids(&self) -> Vec<WinId> {
        self.windows.keys().copied().collect()
    }

    /// The focused window (topmost on screen), if any.
    pub fn focused_window(&self) -> Option<WinId> {
        let tui = self.tree.focused()?;
        self.windows.values().find(|w| w.tui == tui).map(|w| w.id)
    }

    /// Focus (and raise) a window.
    pub fn focus_window(&mut self, win: WinId) -> WowResult<()> {
        let tui = self.window(win)?.tui;
        self.tree.focus(tui);
        Ok(())
    }

    /// Cycle focus to the next window.
    pub fn focus_next_window(&mut self) -> Option<WinId> {
        self.tree.focus_next();
        self.focused_window()
    }

    /// The screen rectangle of a window's frame.
    pub fn window_rect(&self, win: WinId) -> WowResult<Rect> {
        let tui = self.window(win)?.tui;
        Ok(self.tree.get(tui).map(|w| w.rect()).unwrap_or_default())
    }

    /// Move a window's frame.
    pub fn move_window(&mut self, win: WinId, x: i32, y: i32) -> WowResult<()> {
        let tui = self.window(win)?.tui;
        if let Some(w) = self.tree.get_mut(tui) {
            w.move_to(x, y);
        }
        Ok(())
    }

    /// Resize a window's frame (contents repaint on the next frame).
    pub fn resize_window(&mut self, win: WinId, w: u16, h: u16) -> WowResult<()> {
        let tui = self.window(win)?.tui;
        if let Some(tw) = self.tree.get_mut(tui) {
            tw.resize(w, h);
        }
        Ok(())
    }

    // -- Browsing ---------------------------------------------------------------

    /// The current row of a window (view-shaped).
    pub fn current_row(&self, win: WinId) -> WowResult<Option<Tuple>> {
        Ok(self.window(win)?.cursor.current_row().map(|(_, t)| t))
    }

    /// Move to the next row.
    pub fn browse_next(&mut self, win: WinId) -> WowResult<bool> {
        let (db, vc, w) = self.parts(win)?;
        let moved = w.cursor.next(db, vc)?;
        w.show_current();
        Ok(moved)
    }

    /// Move to the previous row.
    pub fn browse_prev(&mut self, win: WinId) -> WowResult<bool> {
        let (db, vc, w) = self.parts(win)?;
        let moved = w.cursor.prev(db, vc)?;
        w.show_current();
        Ok(moved)
    }

    /// Page forward (a screenful).
    pub fn browse_next_page(&mut self, win: WinId) -> WowResult<bool> {
        let (db, vc, w) = self.parts(win)?;
        let moved = w.cursor.next_page(db, vc)?;
        w.show_current();
        Ok(moved)
    }

    /// Page backward.
    pub fn browse_prev_page(&mut self, win: WinId) -> WowResult<bool> {
        let (db, vc, w) = self.parts(win)?;
        let moved = w.cursor.prev_page(db, vc)?;
        w.show_current();
        Ok(moved)
    }

    /// Re-fetch a window's data explicitly.
    pub fn refresh_window(&mut self, win: WinId) -> WowResult<()> {
        // System windows re-materialize live state before re-querying, so a
        // refresh shows the world as of *now*, not as of open.
        if crate::sys::is_sys_view(&self.window(win)?.view) {
            self.sys_sync()?;
        }
        let span = wow_obs::span(wow_obs::Op::FullRefresh);
        let (db, vc, w) = self.parts(win)?;
        w.cursor.refresh(db, vc)?;
        self.note_refresh(win, crate::window_mgr::RefreshKind::Full);
        span.finish();
        Ok(())
    }

    // -- External writes ---------------------------------------------------------

    /// Insert a base row from outside any window (scripts, loaders, tests)
    /// and propagate the delta to every watching window.
    pub fn apply_insert(
        &mut self,
        table: &str,
        values: Vec<wow_rel::value::Value>,
    ) -> WowResult<wow_storage::Rid> {
        let rid = self.db.insert(table, values)?;
        let id = self.db.catalog().table(table)?.id;
        let row = self
            .db
            .get_row(id, rid)?
            .expect("row just inserted is readable");
        let delta = wow_rel::delta::BaseDelta::insert(table, rid, row);
        self.propagate_delta(&delta, None)?;
        Ok(rid)
    }

    /// Update a base row in place from outside any window and propagate.
    /// Returns whether the rid existed.
    pub fn apply_update(
        &mut self,
        table: &str,
        rid: wow_storage::Rid,
        values: Vec<wow_rel::value::Value>,
    ) -> WowResult<bool> {
        let id = self.db.catalog().table(table)?.id;
        let Some(old) = self.db.get_row(id, rid)? else {
            return Ok(false);
        };
        if !self.db.update_rid(table, rid, values)? {
            return Ok(false);
        }
        let new = self
            .db
            .get_row(id, rid)?
            .expect("row just updated is readable");
        let delta = wow_rel::delta::BaseDelta::update(table, rid, old, new);
        self.propagate_delta(&delta, None)?;
        Ok(true)
    }

    /// Delete a base row from outside any window and propagate. Returns
    /// whether the rid existed.
    pub fn apply_delete(&mut self, table: &str, rid: wow_storage::Rid) -> WowResult<bool> {
        let id = self.db.catalog().table(table)?.id;
        let Some(old) = self.db.get_row(id, rid)? else {
            return Ok(false);
        };
        if !self.db.delete_rid(table, rid)? {
            return Ok(false);
        }
        let delta = wow_rel::delta::BaseDelta::delete(table, rid, old);
        self.propagate_delta(&delta, None)?;
        Ok(true)
    }

    // -- Rendering -----------------------------------------------------------------

    /// Render every window and return the damage patches for this frame.
    pub fn render(&mut self) -> Vec<Patch> {
        for state in self.windows.values_mut() {
            if let Some(tw) = self.tree.get_mut(state.tui) {
                state.render_into(tw);
            }
        }
        let frame = self.tree.compose(self.cfg.screen);
        let patches = self.damage.frame(&frame);
        self.stats.frames += 1;
        self.stats.cells_emitted += patches.len() as u64;
        patches
    }

    /// Render and present to a backend.
    pub fn render_to(&mut self, backend: &mut dyn wow_tui::backend::Backend) {
        let patches = self.render();
        backend.present(&patches);
        backend.flush();
    }

    /// Render to a fresh screen snapshot (tests/examples).
    pub fn render_snapshot(&mut self) -> Vec<String> {
        for state in self.windows.values_mut() {
            if let Some(tw) = self.tree.get_mut(state.tui) {
                state.render_into(tw);
            }
        }
        self.tree.compose(self.cfg.screen).to_strings()
    }

    // -- Key routing -----------------------------------------------------------------

    /// Route a key press to the focused window; the global chords are
    /// `Ctrl-W` (cycle windows) and, in Browse mode, single-letter commands
    /// (`e`dit, `i`nsert, `q`uery, `d`elete, `u`ndo, `r`efresh).
    pub fn handle_key(&mut self, key: Key) -> WowResult<()> {
        if key == Key::Ctrl('w') {
            self.focus_next_window();
            return Ok(());
        }
        let Some(win) = self.focused_window() else {
            return Ok(());
        };
        let mode = self.window(win)?.mode;
        match mode {
            Mode::Browse => self.browse_key(win, key),
            Mode::Edit | Mode::Insert | Mode::Query => self.form_key(win, key),
        }
    }

    fn browse_key(&mut self, win: WinId, key: Key) -> WowResult<()> {
        match key {
            Key::Down => {
                self.browse_next(win)?;
            }
            Key::Up => {
                self.browse_prev(win)?;
            }
            Key::PageDown => {
                self.browse_next_page(win)?;
            }
            Key::PageUp => {
                self.browse_prev_page(win)?;
            }
            Key::Char('e') => self.enter_edit(win)?,
            Key::Char('i') => self.enter_insert(win)?,
            Key::Char('q') => self.enter_query(win)?,
            Key::Char('d') => {
                let session = self.window(win)?.session;
                match self.delete_current(win) {
                    Ok(()) => {}
                    Err(e) => self.set_status(win, &e.to_string()),
                }
                let _ = session;
            }
            Key::Char('u') => {
                let session = self.window(win)?.session;
                match self.undo_last(session) {
                    Ok(()) => self.set_status(win, "undone"),
                    Err(e) => self.set_status(win, &e.to_string()),
                }
            }
            Key::Char('r') => self.refresh_window(win)?,
            Key::Char('x') => {
                // Clear an active query restriction.
                self.clear_query(win)?;
            }
            _ => {}
        }
        Ok(())
    }

    fn form_key(&mut self, win: WinId, key: Key) -> WowResult<()> {
        use wow_tui::widget::Response;
        let response = {
            let w = self.window_mut(win)?;
            if key == Key::Enter {
                Response::Submit
            } else if key == Key::Esc {
                Response::Cancel
            } else {
                w.form.handle_key(key)
            }
        };
        match response {
            Response::Submit => match self.commit(win) {
                Ok(()) => {}
                Err(e) => self.set_status(win, &e.to_string()),
            },
            Response::Cancel => self.cancel_mode(win)?,
            _ => {}
        }
        Ok(())
    }

    /// Set a window's status message.
    pub fn set_status(&mut self, win: WinId, msg: &str) {
        if let Some(w) = self.windows.get_mut(&win) {
            w.status = msg.to_string();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_with_emp() -> World {
        let mut w = World::new(WorldConfig::default());
        w.db_mut()
            .run("CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)")
            .unwrap();
        for (n, d, s) in [
            ("alice", "toy", 120),
            ("bob", "shoe", 90),
            ("carol", "toy", 150),
        ] {
            w.db_mut()
                .run(&format!(
                    r#"APPEND TO emp (name = "{n}", dept = "{d}", salary = {s})"#
                ))
                .unwrap();
        }
        w.define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .unwrap();
        w
    }

    #[test]
    fn durable_world_survives_reopen_with_windows() {
        let dir = std::env::temp_dir().join(format!("wow-world-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut w = World::open_durable(WorldConfig::default(), &dir).unwrap();
            w.db_mut()
                .run("CREATE TABLE emp (name TEXT KEY, salary INT)")
                .unwrap();
            w.db_mut()
                .run(r#"APPEND TO emp (name = "alice", salary = 120)"#)
                .unwrap();
            w.db_mut()
                .run(r#"APPEND TO emp (name = "bob", salary = 90)"#)
                .unwrap();
            w.checkpoint_durable().unwrap();
            w.db_mut()
                .run(r#"APPEND TO emp (name = "carol", salary = 150)"#)
                .unwrap();
            // "Crash" without a clean shutdown.
        }
        let mut w = World::open_durable(WorldConfig::default(), &dir).unwrap();
        let rows = w
            .db_mut()
            .run("RANGE OF e IS emp RETRIEVE (e.name) SORT BY e.name")
            .unwrap();
        let names: Vec<String> = rows
            .tuples
            .iter()
            .map(|t| t.values[0].to_string())
            .collect();
        assert_eq!(names, vec!["alice", "bob", "carol"]);
        // Recovery + WAL gauges surface through the metrics export.
        w.define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)")
            .unwrap();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        assert!(w.current_row(win).is_ok());
        w.export_metrics();
        let snap = wow_obs::metrics().snapshot();
        assert!(snap.counter("wal.epoch").is_some());
        assert!(snap.counter("recovery.replayed_ops").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_window_shows_first_row() {
        let mut w = world_with_emp();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        let row = w.current_row(win).unwrap().unwrap();
        assert_eq!(row.values[0].to_string(), "alice");
        assert!(w.window(win).unwrap().is_updatable());
    }

    #[test]
    fn browse_moves_through_pk_order() {
        let mut w = world_with_emp();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        assert!(w.browse_next(win).unwrap());
        assert_eq!(
            w.current_row(win).unwrap().unwrap().values[0].to_string(),
            "bob"
        );
        assert!(w.browse_next(win).unwrap());
        assert!(!w.browse_next(win).unwrap(), "end of data");
        assert!(w.browse_prev(win).unwrap());
        assert_eq!(
            w.current_row(win).unwrap().unwrap().values[0].to_string(),
            "bob"
        );
    }

    #[test]
    fn unknown_ids_error() {
        let mut w = world_with_emp();
        assert!(matches!(
            w.open_window(SessionId(99), "emps", None),
            Err(WowError::NoSuchSession(99))
        ));
        let s = w.open_session();
        assert!(w.open_window(s, "nope", None).is_err());
        assert!(matches!(
            w.current_row(WinId(42)),
            Err(WowError::NoSuchWindow(42))
        ));
    }

    #[test]
    fn close_session_closes_windows() {
        let mut w = world_with_emp();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        w.close_session(s).unwrap();
        assert!(w.window(win).is_err());
        assert_eq!(w.render_snapshot().join(""), " ".repeat(80 * 24));
    }

    #[test]
    fn render_snapshot_shows_form_and_status() {
        let mut w = world_with_emp();
        let s = w.open_session();
        w.open_window(s, "emps", None).unwrap();
        let screen = w.render_snapshot();
        let all = screen.join("\n");
        assert!(all.contains("emps"), "window title:\n{all}");
        assert!(all.contains("Name:"), "captions:\n{all}");
        assert!(all.contains("alice"), "values:\n{all}");
        assert!(all.contains("Browse"), "status:\n{all}");
        assert!(all.contains("row 1"), "position:\n{all}");
    }

    #[test]
    fn damage_render_is_quiet_when_idle() {
        let mut w = world_with_emp();
        let s = w.open_session();
        w.open_window(s, "emps", None).unwrap();
        let first = w.render();
        assert!(!first.is_empty());
        let second = w.render();
        assert!(second.is_empty(), "no change → no damage");
    }

    #[test]
    fn ctrl_w_cycles_focus() {
        let mut w = world_with_emp();
        let s = w.open_session();
        let a = w.open_window(s, "emps", None).unwrap();
        let b = w.open_window(s, "emps", None).unwrap();
        assert_eq!(w.focused_window(), Some(b));
        w.handle_key(Key::Ctrl('w')).unwrap();
        assert_eq!(w.focused_window(), Some(a));
    }
}
