//! Tunables for a [`crate::world::World`].

use wow_tui::geom::Size;
use wow_views::translate::CheckOption;

/// Configuration for a world.
#[derive(Debug, Clone, Copy)]
pub struct WorldConfig {
    /// Screen size the window manager composes onto.
    pub screen: Size,
    /// Rows fetched per browse page (one "screenful", the paper's unit).
    pub page_size: usize,
    /// Whether through-view writes are checked against the view predicate.
    pub check_option: CheckOption,
    /// Whether the lock manager is consulted (Table 5 turns this off for
    /// the unsafe baseline).
    pub locking: bool,
    /// Per-session undo depth.
    pub undo_depth: usize,
    /// Whether write propagation pushes typed deltas through the view
    /// algebra and patches browse cursors in place; off forces the full
    /// re-query path on every affected window (the Figure 4 baseline).
    pub delta_propagation: bool,
    /// Worker threads for intra-query and fan-out parallelism. `0` means
    /// auto (available parallelism, capped); the `WOW_WORKERS` environment
    /// variable overrides either way (see [`wow_par::resolve_workers`]).
    /// `1` is exact serial execution.
    pub workers: usize,
    /// Whether scans/filters/projections run on the vectorized batch
    /// executor with compiled predicates; off forces the row-at-a-time
    /// reference interpreter everywhere. The `WOW_VECTORIZED` environment
    /// variable overrides either way (see [`wow_rel::db::resolve_vectorized`]).
    pub vectorized: bool,
    /// Slow-query threshold: traced root spans at least this slow are
    /// copied into the tracer's slow-query log. `0` disables the log; the
    /// `WOW_SLOW_NS` environment variable overrides either way (see
    /// [`wow_obs::resolve_slow_threshold_ns`]).
    pub slow_query_ns: u64,
    /// Commits between automatic durable checkpoints (`0` disables them).
    /// Only meaningful for worlds opened with
    /// [`crate::world::World::open_durable`]; the `WOW_CKPT_EVERY`
    /// environment variable overrides either way (see
    /// [`wow_rel::durable::resolve_checkpoint_every`]).
    pub checkpoint_every: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            screen: Size::new(80, 24),
            page_size: 16,
            check_option: CheckOption::Checked,
            locking: true,
            undo_depth: 64,
            delta_propagation: true,
            workers: 0,
            vectorized: true,
            slow_query_ns: 100_000_000,
            checkpoint_every: 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = WorldConfig::default();
        assert_eq!(c.screen, Size::new(80, 24));
        assert!(c.page_size > 0);
        assert!(c.locking);
        assert_eq!(c.check_option, CheckOption::Checked);
    }
}
