//! System tables: a window on the world's own internals.
//!
//! The paper's thesis is that every interaction with shared data happens
//! through a window on a view. This module makes the system's *runtime
//! state* — metrics, trace spans, causal traces, open windows, held locks —
//! shared data too: ordinary base tables (`__sys_*`) are materialized from
//! live state and ordinary views (`__wow_*`) are registered over them, so
//! `open_window(session, "__wow_metrics", None)` goes through the exact
//! same forms/browse machinery as any user view.
//!
//! Semantics:
//!
//! * The backing tables are (re)materialized when a system window opens and
//!   whenever it is refreshed — a system window shows a *snapshot*, and the
//!   standard refresh key brings it current, exactly like a user window
//!   over externally-written data.
//! * System windows are forced read-only (editing metrics through a form is
//!   meaningless) and use a materialized cursor — a stable snapshot of
//!   state that changes under the reader's feet.
//! * The view and table names differ (`__wow_metrics` over `__sys_metrics`)
//!   because a view may not range over a relation with its own name.

use crate::error::WowResult;
use crate::locks::LockMode;
use crate::world::World;
use wow_rel::value::Value;

/// One live network connection, as reported by the embedding server's
/// [`ConnectionsProvider`] and shown through `__wow_connections`.
#[derive(Debug, Clone, Default)]
pub struct ConnectionInfo {
    /// Server-assigned connection id.
    pub conn: u64,
    /// The session the connection is bound to (0 before the handshake).
    pub session: u32,
    /// Peer address (`ip:port`).
    pub peer: String,
    /// Connection state (`open`, `draining`, …).
    pub state: String,
    /// Requests handled on this connection.
    pub requests: u64,
    /// Push frames delivered to this connection.
    pub pushes: u64,
    /// Push frames coalesced away (superseded by a newer generation
    /// before the writer drained them).
    pub coalesced: u64,
    /// Frames currently queued in the connection's outbox.
    pub queued: u64,
    /// Milliseconds since the connection was accepted.
    pub age_ms: u64,
}

/// Closure a network server installs via
/// [`World::set_connections_provider`] to surface its live connections as
/// `__wow_connections` rows. Called during `sys_sync` with the world lock
/// held, so it must not call back into the world.
pub type ConnectionsProvider = Box<dyn Fn() -> Vec<ConnectionInfo> + Send>;

/// The system views, with the QUEL definitions registered for them.
pub const SYS_VIEWS: [(&str, &str); 7] = [
    (
        "__wow_metrics",
        "RANGE OF m IS __sys_metrics RETRIEVE (m.metric, m.value)",
    ),
    (
        "__wow_spans",
        "RANGE OF s IS __sys_spans RETRIEVE (s.seq, s.op, s.start_us, s.dur_us, s.arg)",
    ),
    (
        "__wow_traces",
        "RANGE OF t IS __sys_traces \
         RETRIEVE (t.seq, t.trace, t.span, t.parent, t.op, t.start_us, t.dur_us, t.arg)",
    ),
    (
        "__wow_windows",
        "RANGE OF w IS __sys_windows \
         RETRIEVE (w.win, w.view, w.session, w.mode, w.refresh, w.age_ms, w.stale, w.updatable, \
         w.generation)",
    ),
    (
        "__wow_locks",
        "RANGE OF l IS __sys_locks RETRIEVE (l.seq, l.relation, l.holder, l.mode)",
    ),
    (
        "__wow_pool",
        "RANGE OF p IS __sys_pool RETRIEVE (p.stat, p.value)",
    ),
    (
        "__wow_connections",
        "RANGE OF c IS __sys_connections \
         RETRIEVE (c.conn, c.session, c.peer, c.state, c.requests, c.pushes, c.coalesced, \
         c.queued, c.age_ms)",
    ),
];

const SYS_DDL: [&str; 7] = [
    "CREATE TABLE __sys_metrics (metric TEXT KEY, value INT)",
    "CREATE TABLE __sys_spans (seq INT KEY, op TEXT, start_us INT, dur_us INT, arg INT)",
    "CREATE TABLE __sys_traces (seq INT KEY, trace INT, span INT, parent INT, op TEXT, \
     start_us INT, dur_us INT, arg INT)",
    "CREATE TABLE __sys_windows (win INT KEY, view TEXT, session INT, mode TEXT, \
     refresh TEXT, age_ms INT, stale INT, updatable INT, generation INT)",
    "CREATE TABLE __sys_locks (seq INT KEY, relation TEXT, holder INT, mode TEXT)",
    "CREATE TABLE __sys_pool (stat TEXT KEY, value INT)",
    "CREATE TABLE __sys_connections (conn INT KEY, session INT, peer TEXT, state TEXT, \
     requests INT, pushes INT, coalesced INT, queued INT, age_ms INT)",
];

/// Whether `view` names a system view.
pub fn is_sys_view(view: &str) -> bool {
    SYS_VIEWS.iter().any(|(name, _)| *name == view)
}

impl World {
    /// Push every legacy counter surface into the unified
    /// [`wow_obs::MetricsRegistry`] as named gauges: the buffer pool's
    /// `PoolStats`, the world's `WorldStats`, the per-table row counts the
    /// optimizer's `StatsRegistry` tracks, the lock manager's counters, the
    /// executor's counters, and the WAL append count. After this call the
    /// registry snapshot is the one place to read all of them.
    pub fn export_metrics(&self) {
        let m = wow_obs::metrics();
        let p = self.db().pool_stats();
        m.set("pool.hits", p.hits);
        m.set("pool.misses", p.misses);
        m.set("pool.evictions", p.evictions);
        m.set("pool.writebacks", p.writebacks);
        m.set("pool.prefetches", p.prefetches);
        m.set("pool.prefetch_hits", p.prefetch_hits);
        let s = &self.stats;
        m.set("world.commits", s.commits);
        m.set("world.windows_refreshed", s.windows_refreshed);
        m.set("world.propagations", s.propagations);
        m.set("world.delta_refreshes", s.delta_refreshes);
        m.set("world.full_refreshes", s.full_refreshes);
        m.set("world.delta_rows", s.delta_rows);
        m.set("world.frames", s.frames);
        m.set("world.cells_emitted", s.cells_emitted);
        let l = self.locks();
        m.set("locks.grants", l.grants);
        m.set("locks.conflicts", l.conflicts);
        m.set("locks.deadlocks", l.deadlocks);
        let c = self.db().counters();
        m.set("exec.rows_scanned", c.rows_scanned);
        m.set("exec.index_probes", c.index_probes);
        m.set("exec.join_rows", c.join_rows);
        m.set("exec.statements", c.statements);
        m.set("exec.batches", c.batches);
        // Percent of rows surviving vectorized filter passes: a coarse
        // live view of how selective the compiled predicates are.
        m.set("exec.sel_density", 100 * c.sel_out / c.sel_in.max(1));
        if let Some(wal) = self.db().wal() {
            m.set("wal.appended", wal.appended());
            m.set("wal.flushes", wal.flushes());
            m.set("wal.bytes_written", wal.bytes_written());
            m.set("wal.epoch", wal.epoch());
            m.set(
                "wal.fsync_on_commit",
                (wal.sync_policy() == wow_storage::wal::SyncPolicy::Commit) as u64,
            );
        }
        if let Some(r) = self.db().recovery_report() {
            m.set("recovery.committed", r.committed.len() as u64);
            m.set("recovery.in_flight", r.in_flight.len() as u64);
            m.set("recovery.aborted", r.aborted.len() as u64);
            m.set("recovery.replayed_ops", r.replayed_ops);
            m.set("recovery.skipped_ops", r.skipped_ops);
            m.set("recovery.checkpoints", self.db().checkpoints_taken());
        }
        m.set("par.workers", self.db().workers() as u64);
        for (name, v) in wow_par::stats::snapshot().rows() {
            m.set(&format!("par.{name}"), v);
        }
        let t = wow_obs::tracer();
        m.set("obs.spans_recorded", t.recorded());
        m.set("obs.spans_dropped", t.dropped());
        m.set("obs.slow_queries", t.slow_snapshot().len() as u64);
        for name in self.db().catalog().table_names() {
            if let Ok(info) = self.db().catalog().table(&name) {
                m.set(&format!("rows.{name}"), self.db().row_count(info.id));
            }
        }
    }

    /// Materialize the system tables from live state (creating them and
    /// registering the `__wow_*` views on first use). Called by
    /// `open_window` and `refresh_window` for system views; harmless to
    /// call directly.
    pub fn sys_sync(&mut self) -> WowResult<()> {
        self.sys_ensure()?;
        self.export_metrics();
        let metrics = metrics_rows();
        let spans = span_rows();
        let traces = trace_rows();
        let windows = self.window_rows();
        let locks = self.lock_rows();
        let pool = self.pool_rows();
        let conns = self.conn_rows();
        self.sys_rewrite("__sys_metrics", metrics)?;
        self.sys_rewrite("__sys_spans", spans)?;
        self.sys_rewrite("__sys_traces", traces)?;
        self.sys_rewrite("__sys_windows", windows)?;
        self.sys_rewrite("__sys_locks", locks)?;
        self.sys_rewrite("__sys_pool", pool)?;
        self.sys_rewrite("__sys_connections", conns)?;
        Ok(())
    }

    /// Create the backing tables and register the views, once.
    fn sys_ensure(&mut self) -> WowResult<()> {
        if self.db().catalog().has_table("__sys_metrics") {
            return Ok(());
        }
        for ddl in SYS_DDL {
            self.db_mut().run(ddl)?;
        }
        for (name, src) in SYS_VIEWS {
            self.define_view(name, src)?;
        }
        Ok(())
    }

    /// Replace a backing table's contents. Writes go straight to the
    /// database — deliberately *not* through propagation: open system
    /// windows keep their snapshot until refreshed, like any window over
    /// externally-written data.
    fn sys_rewrite(&mut self, table: &str, rows: Vec<Vec<Value>>) -> WowResult<()> {
        let db = self.db_mut();
        let id = db.catalog().table(table)?.id;
        for (rid, _) in db.scan_table_raw(id)? {
            db.delete_rid(table, rid)?;
        }
        for row in rows {
            db.insert(table, row)?;
        }
        Ok(())
    }

    fn window_rows(&self) -> Vec<Vec<Value>> {
        self.windows
            .values()
            .map(|w| {
                vec![
                    Value::Int(w.id.0 as i64),
                    Value::Text(w.view.clone()),
                    Value::Int(w.session.0 as i64),
                    Value::Text(w.mode.name().to_string()),
                    Value::Text(w.last_refresh.name().to_string()),
                    Value::Int(w.refreshed_at.elapsed().as_millis() as i64),
                    Value::Int(w.stale as i64),
                    Value::Int(w.is_updatable() as i64),
                    Value::Int(w.generation as i64),
                ]
            })
            .collect()
    }

    /// `__sys_connections` rows from the installed provider (empty when
    /// the world is embedded rather than served).
    fn conn_rows(&self) -> Vec<Vec<Value>> {
        self.connection_rows()
            .into_iter()
            .map(|c| {
                vec![
                    Value::Int(c.conn as i64),
                    Value::Int(c.session as i64),
                    Value::Text(c.peer),
                    Value::Text(c.state),
                    Value::Int(c.requests as i64),
                    Value::Int(c.pushes as i64),
                    Value::Int(c.coalesced as i64),
                    Value::Int(c.queued as i64),
                    Value::Int(c.age_ms as i64),
                ]
            })
            .collect()
    }

    /// `__sys_pool` rows: the worker-pool width plus the global scatter and
    /// per-layer parallel-vs-serial decision counters from [`wow_par`].
    fn pool_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = vec![vec![
            Value::Text("workers".to_string()),
            Value::Int(self.db().workers() as i64),
        ]];
        for (name, v) in wow_par::stats::snapshot().rows() {
            rows.push(vec![Value::Text(name.to_string()), Value::Int(v as i64)]);
        }
        rows
    }

    fn lock_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for sid in self.session_ids() {
            for (relation, mode) in self.locks().held_by(sid.0) {
                rows.push(vec![
                    Value::Int(rows.len() as i64),
                    Value::Text(relation),
                    Value::Int(sid.0 as i64),
                    Value::Text(
                        match mode {
                            LockMode::Shared => "S",
                            LockMode::Exclusive => "X",
                        }
                        .to_string(),
                    ),
                ]);
            }
        }
        rows
    }
}

/// `__sys_metrics` rows: every named gauge, plus one row per percentile of
/// every traced operation's latency histogram.
fn metrics_rows() -> Vec<Vec<Value>> {
    let snap = wow_obs::metrics().snapshot();
    let mut rows = Vec::new();
    for (name, v) in &snap.counters {
        rows.push(vec![Value::Text(name.clone()), Value::Int(*v as i64)]);
    }
    for (op, h) in &snap.ops {
        let name = op.name();
        for (suffix, v) in [
            ("count", h.count),
            ("mean_ns", h.mean_ns),
            ("p50_ns", h.p50_ns),
            ("p95_ns", h.p95_ns),
            ("p99_ns", h.p99_ns),
            ("max_ns", h.max_ns),
        ] {
            rows.push(vec![
                Value::Text(format!("{name}.{suffix}")),
                Value::Int(v as i64),
            ]);
        }
    }
    rows
}

/// `__sys_traces` rows: the tracer's ring with its causal linkage — every
/// live span's `trace`/`span`/`parent` ids, so one trace's tree can be
/// reassembled with an ordinary QUEL query over the view (spans recorded
/// outside any request context carry their own fresh trace ids).
fn trace_rows() -> Vec<Vec<Value>> {
    wow_obs::tracer()
        .snapshot()
        .into_iter()
        .map(|s| {
            vec![
                Value::Int(s.seq as i64),
                Value::Int(s.trace_id as i64),
                Value::Int(s.span_id as i64),
                Value::Int(s.parent_id as i64),
                Value::Text(s.op.name().to_string()),
                Value::Int(s.start_us as i64),
                Value::Int((s.dur_ns / 1_000) as i64),
                Value::Int(s.arg as i64),
            ]
        })
        .collect()
}

/// `__sys_spans` rows: the tracer's ring, oldest first.
fn span_rows() -> Vec<Vec<Value>> {
    wow_obs::tracer()
        .snapshot()
        .into_iter()
        .map(|s| {
            vec![
                Value::Int(s.seq as i64),
                Value::Text(s.op.name().to_string()),
                Value::Int(s.start_us as i64),
                Value::Int((s.dur_ns / 1_000) as i64),
                Value::Int(s.arg as i64),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::error::WowError;

    fn world() -> World {
        let mut w = World::new(WorldConfig::default());
        w.db_mut()
            .run("CREATE TABLE emp (name TEXT KEY, salary INT)")
            .unwrap();
        w.db_mut()
            .run(r#"APPEND TO emp (name = "alice", salary = 120)"#)
            .unwrap();
        w.define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)")
            .unwrap();
        w
    }

    #[test]
    fn sys_view_names_are_recognized() {
        assert!(is_sys_view("__wow_metrics"));
        assert!(is_sys_view("__wow_locks"));
        assert!(!is_sys_view("emps"));
        assert!(
            !is_sys_view("__sys_metrics"),
            "backing tables are not views"
        );
    }

    #[test]
    fn metrics_window_opens_and_has_rows() {
        let mut w = world();
        let s = w.open_session();
        let win = w.open_window(s, "__wow_metrics", None).unwrap();
        let state = w.window(win).unwrap();
        assert!(!state.is_updatable());
        assert_eq!(state.read_only_reasons, vec!["system tables are read-only"]);
        // The unified registry exported the legacy stats as gauges.
        let row = w.current_row(win).unwrap();
        assert!(row.is_some(), "metrics table is not empty");
        let snap = wow_obs::metrics().snapshot();
        assert!(snap.counter("world.commits").is_some());
        assert!(snap.counter("pool.hits").is_some());
        assert!(snap.counter("rows.emp").is_some());
    }

    #[test]
    fn windows_table_lists_itself_after_refresh() {
        let mut w = world();
        let s = w.open_session();
        let user = w.open_window(s, "emps", None).unwrap();
        let win = w.open_window(s, "__wow_windows", None).unwrap();
        // At open time the sync ran before this window existed; the user
        // window is listed.
        let names: Vec<String> = w
            .db_mut()
            .run("RANGE OF w IS __sys_windows RETRIEVE (w.view) SORT BY w.view")
            .unwrap()
            .tuples
            .iter()
            .map(|t| t.values[0].to_string())
            .collect();
        assert!(names.contains(&"emps".to_string()));
        // After a refresh, the system window observes itself too.
        w.refresh_window(win).unwrap();
        let names: Vec<String> = w
            .db_mut()
            .run("RANGE OF w IS __sys_windows RETRIEVE (w.view) SORT BY w.view")
            .unwrap()
            .tuples
            .iter()
            .map(|t| t.values[0].to_string())
            .collect();
        assert!(names.contains(&"__wow_windows".to_string()));
        let _ = user;
    }

    #[test]
    fn sys_windows_reject_edits() {
        let mut w = world();
        let s = w.open_session();
        for (view, _) in SYS_VIEWS {
            let win = w.open_window(s, view, None).unwrap();
            assert!(
                matches!(w.enter_edit(win), Err(WowError::ReadOnly { .. })),
                "{view} must refuse edit mode"
            );
            assert!(matches!(
                w.enter_insert(win),
                Err(WowError::ReadOnly { .. })
            ));
        }
    }

    #[test]
    fn pool_window_reports_workers_and_decisions() {
        let mut w = world();
        let s = w.open_session();
        let win = w.open_window(s, "__wow_pool", None).unwrap();
        let state = w.window(win).unwrap();
        assert!(!state.is_updatable(), "__wow_pool is read-only");
        let rows = w
            .db_mut()
            .run("RANGE OF p IS __sys_pool RETRIEVE (p.stat, p.value)")
            .unwrap();
        let stats: Vec<String> = rows
            .tuples
            .iter()
            .map(|t| t.values[0].to_string())
            .collect();
        for expected in [
            "workers",
            "tasks",
            "chunks",
            "scan_parallel",
            "scan_serial",
            "join_parallel",
            "join_serial",
            "fanout_parallel",
            "fanout_serial",
        ] {
            assert!(stats.contains(&expected.to_string()), "missing {expected}");
        }
        let workers = rows
            .tuples
            .iter()
            .find(|t| t.values[0].to_string() == "workers")
            .unwrap();
        assert_eq!(workers.values[1].to_string(), w.db().workers().to_string());
    }

    #[test]
    fn locks_table_shows_held_locks() {
        let mut w = world();
        let s = w.open_session();
        assert!(w.try_lock(s, "emp", LockMode::Exclusive));
        w.sys_sync().unwrap();
        let rows = w
            .db_mut()
            .run("RANGE OF l IS __sys_locks RETRIEVE (l.relation, l.mode)")
            .unwrap();
        assert_eq!(rows.tuples.len(), 1);
        assert_eq!(rows.tuples[0].values[0].to_string(), "emp");
        assert_eq!(rows.tuples[0].values[1].to_string(), "X");
        // Released locks vanish on the next sync.
        w.release_locks(s);
        w.sys_sync().unwrap();
        let rows = w
            .db_mut()
            .run("RANGE OF l IS __sys_locks RETRIEVE (l.relation)")
            .unwrap();
        assert!(rows.tuples.is_empty());
    }

    #[test]
    fn traces_window_carries_causal_linkage() {
        let mut w = world();
        let t = wow_obs::tracer();
        t.set_enabled(true);
        let ctx = wow_obs::TraceContext::mint();
        {
            let _g = wow_obs::install_context(Some(ctx));
            let s = w.open_session();
            let win = w.open_window(s, "emps", None).unwrap();
            w.refresh_window(win).unwrap();
        }
        w.sys_sync().unwrap();
        t.set_enabled(false);
        let rows = w
            .db_mut()
            .run("RANGE OF t IS __sys_traces RETRIEVE (t.trace, t.span, t.parent, t.op)")
            .unwrap();
        let mine: Vec<_> = rows
            .tuples
            .iter()
            .filter(|r| r.values[0] == Value::Int(ctx.trace_id as i64))
            .collect();
        assert!(!mine.is_empty(), "trace rows for the minted trace exist");
        // Every parent id resolves within the same trace (the minted root
        // context itself has span id 0).
        for row in &mine {
            let parent = &row.values[2];
            assert!(
                *parent == Value::Int(0) || mine.iter().any(|r| &r.values[1] == parent),
                "dangling parent in {row:?}"
            );
        }
        // The metrics export carries the tracer's drop/record gauges.
        w.export_metrics();
        let snap = wow_obs::metrics().snapshot();
        assert!(snap.counter("obs.spans_recorded").unwrap() > 0);
        assert!(snap.counter("obs.spans_dropped").is_some());
        assert!(snap.counter("obs.slow_queries").is_some());
    }

    #[test]
    fn spans_window_carries_traced_operations() {
        let mut w = world();
        wow_obs::tracer().set_enabled(true);
        let s = w.open_session();
        let user = w.open_window(s, "emps", None).unwrap();
        w.refresh_window(user).unwrap();
        let win = w.open_window(s, "__wow_spans", None).unwrap();
        wow_obs::tracer().set_enabled(false);
        let ops: Vec<String> = w
            .db_mut()
            .run("RANGE OF s IS __sys_spans RETRIEVE (s.op)")
            .unwrap()
            .tuples
            .iter()
            .map(|t| t.values[0].to_string())
            .collect();
        assert!(
            ops.iter().any(|o| o == "full_refresh"),
            "refresh span captured: {ops:?}"
        );
        let _ = win;
    }
}
