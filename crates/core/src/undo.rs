//! Per-session undo of through-window writes.
//!
//! Every committed edit/insert/delete pushes its inverse; `undo` pops and
//! applies it. The stack is bounded ([`crate::config::WorldConfig::undo_depth`]);
//! the oldest entries fall off, as they did when undo logs were core memory.

use wow_rel::value::Value;
use wow_storage::Rid;

/// The inverse of one committed write.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoEntry {
    /// An update happened: restore these base-table values at `rid`.
    Update {
        /// Base table.
        table: String,
        /// Base row.
        rid: Rid,
        /// The full previous row image.
        old: Vec<Value>,
    },
    /// An insert happened: delete `rid` again.
    Insert {
        /// Base table.
        table: String,
        /// Base row.
        rid: Rid,
    },
    /// A delete happened: re-insert this row image.
    Delete {
        /// Base table.
        table: String,
        /// The deleted row image.
        old: Vec<Value>,
    },
}

/// A bounded undo stack.
#[derive(Debug, Default)]
pub struct UndoStack {
    entries: Vec<UndoEntry>,
    depth: usize,
}

impl UndoStack {
    /// A stack keeping at most `depth` entries.
    pub fn new(depth: usize) -> UndoStack {
        UndoStack {
            entries: Vec::new(),
            depth,
        }
    }

    /// Number of undoable writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there is nothing to undo.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record a write's inverse.
    pub fn push(&mut self, entry: UndoEntry) {
        if self.depth == 0 {
            return;
        }
        if self.entries.len() == self.depth {
            self.entries.remove(0);
        }
        self.entries.push(entry);
    }

    /// Pop the most recent inverse.
    pub fn pop(&mut self) -> Option<UndoEntry> {
        self.entries.pop()
    }

    /// Drop everything (session close).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wow_storage::PageId;

    fn ins(n: u64) -> UndoEntry {
        UndoEntry::Insert {
            table: "t".into(),
            rid: Rid::new(PageId(n), 0),
        }
    }

    #[test]
    fn lifo_order() {
        let mut s = UndoStack::new(8);
        s.push(ins(1));
        s.push(ins(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop(), Some(ins(2)));
        assert_eq!(s.pop(), Some(ins(1)));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn bounded_depth_drops_oldest() {
        let mut s = UndoStack::new(2);
        s.push(ins(1));
        s.push(ins(2));
        s.push(ins(3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop(), Some(ins(3)));
        assert_eq!(s.pop(), Some(ins(2)));
    }

    #[test]
    fn zero_depth_disables_undo() {
        let mut s = UndoStack::new(0);
        s.push(ins(1));
        assert!(s.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut s = UndoStack::new(4);
        s.push(ins(1));
        s.clear();
        assert!(s.is_empty());
    }
}
