//! Errors of the window-manager layer.

use std::fmt;

/// Result alias for the core layer.
pub type WowResult<T> = Result<T, WowError>;

/// Errors surfaced to the embedding application (and, in friendlier words,
/// to the window status bar).
#[derive(Debug)]
pub enum WowError {
    /// Relational engine error.
    Rel(wow_rel::RelError),
    /// View layer error.
    View(wow_views::ViewError),
    /// Forms layer error.
    Form(wow_forms::FormError),
    /// Unknown session.
    NoSuchSession(u32),
    /// Unknown window.
    NoSuchWindow(u32),
    /// The window is read-only (its view is not updatable).
    ReadOnly {
        /// Window's view name.
        view: String,
        /// Why the view is not updatable.
        reasons: Vec<String>,
    },
    /// A lock could not be granted because another session holds it.
    LockConflict {
        /// The relation.
        table: String,
        /// The blocking session.
        blocker: u32,
    },
    /// Granting the lock would deadlock.
    Deadlock {
        /// The relation being requested.
        table: String,
    },
    /// The operation needs a current row and the cursor is empty.
    NoCurrentRow,
    /// Nothing to undo.
    NothingToUndo,
    /// The operation is invalid in the window's current mode.
    WrongMode {
        /// What was attempted.
        wanted: &'static str,
        /// The window's mode.
        mode: &'static str,
    },
    /// One or more windows failed to refresh during a propagation fan-out.
    /// Every healthy window was still refreshed — the fan-out runs to
    /// completion and reports the casualties afterwards.
    PropagationFailed {
        /// `(window id, error)` for each window whose refresh failed.
        failures: Vec<(u32, String)>,
    },
    /// A network transport failure: connect/read/write errors, handshake
    /// or protocol violations, or a connection closed mid-exchange. The
    /// `wow-net` layer maps every `std::io::Error` and wire-decode failure
    /// into this variant so remote callers get `WowResult` end to end.
    Net(String),
}

impl fmt::Display for WowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WowError::Rel(e) => write!(f, "{e}"),
            WowError::View(e) => write!(f, "{e}"),
            WowError::Form(e) => write!(f, "{e}"),
            WowError::NoSuchSession(s) => write!(f, "no such session: {s}"),
            WowError::NoSuchWindow(w) => write!(f, "no such window: {w}"),
            WowError::ReadOnly { view, reasons } => {
                write!(f, "window on {view} is read-only: {}", reasons.join("; "))
            }
            WowError::LockConflict { table, blocker } => {
                write!(f, "{table} is locked by session {blocker}")
            }
            WowError::Deadlock { table } => {
                write!(f, "waiting for {table} would deadlock; aborted")
            }
            WowError::NoCurrentRow => write!(f, "no current row"),
            WowError::NothingToUndo => write!(f, "nothing to undo"),
            WowError::WrongMode { wanted, mode } => {
                write!(f, "cannot {wanted} in {mode} mode")
            }
            WowError::PropagationFailed { failures } => {
                write!(
                    f,
                    "{} window refresh(es) failed during propagation: ",
                    failures.len()
                )?;
                let msgs: Vec<String> = failures
                    .iter()
                    .map(|(id, e)| format!("window {id}: {e}"))
                    .collect();
                write!(f, "{}", msgs.join("; "))
            }
            WowError::Net(msg) => write!(f, "network error: {msg}"),
        }
    }
}

impl std::error::Error for WowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WowError::Rel(e) => Some(e),
            WowError::View(e) => Some(e),
            WowError::Form(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wow_rel::RelError> for WowError {
    fn from(e: wow_rel::RelError) -> Self {
        WowError::Rel(e)
    }
}

impl From<wow_views::ViewError> for WowError {
    fn from(e: wow_views::ViewError) -> Self {
        WowError::View(e)
    }
}

impl From<wow_forms::FormError> for WowError {
    fn from(e: wow_forms::FormError) -> Self {
        WowError::Form(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_conversions() {
        let e: WowError = wow_rel::RelError::NoSuchTable("t".into()).into();
        assert_eq!(e.to_string(), "no such table: t");
        let e = WowError::ReadOnly {
            view: "v".into(),
            reasons: vec!["joins two relations".into()],
        };
        assert!(e.to_string().contains("read-only"));
        let e = WowError::Deadlock {
            table: "emp".into(),
        };
        assert!(e.to_string().contains("deadlock"));
    }
}
