//! Relation-level locking: strict two-phase locking with waits-for
//! deadlock detection.
//!
//! The engine itself is single-threaded; sessions interleave their
//! operations on one thread (exactly how the 1983 system multiplexed
//! terminals). The lock manager therefore never *parks* a requester —
//! a conflicting request either returns `Conflict` (caller may retry
//! later, which records a waits-for edge) or `Deadlock` (granting the
//! wait would close a cycle, so the requester must abort).
//!
//! Lock modes are the classic S/X on whole relations; that is the
//! granularity the original forms systems shipped with.

use std::collections::{HashMap, HashSet};

/// A session identifier (mirrors [`crate::session::SessionId`]'s payload;
/// kept as a bare u32 here so the lock manager has no upward deps).
pub type Locker = u32;

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockMode {
    /// Shared (browse).
    Shared,
    /// Exclusive (write).
    Exclusive,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// Granted (or already held at a sufficient mode).
    Granted,
    /// Denied: held incompatibly by `blockers`. A waits-for edge was
    /// recorded; retry after the blockers release.
    Conflict {
        /// Sessions holding incompatible locks.
        blockers: Vec<Locker>,
    },
    /// Denied: waiting would create a deadlock cycle. The caller must give
    /// up (abort or drop its locks) — no edge was recorded.
    Deadlock,
}

#[derive(Debug, Default)]
struct TableLock {
    shared: HashSet<Locker>,
    exclusive: Option<Locker>,
}

/// The lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    tables: HashMap<String, TableLock>,
    /// waits_for[a] = sessions a is currently waiting on.
    waits_for: HashMap<Locker, HashSet<Locker>>,
    /// Grants/denials counters (Table 5 reporting).
    pub grants: u64,
    /// Conflicts returned.
    pub conflicts: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
}

impl LockManager {
    /// A fresh lock manager.
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Request a lock.
    pub fn acquire(&mut self, who: Locker, table: &str, mode: LockMode) -> LockOutcome {
        // Span arg encodes the outcome: 0 granted, 1 conflict, 2 deadlock.
        // Recording takes only the tracer's own ring lock, never a table
        // lock, so instrumenting this path cannot deadlock.
        let mut span = wow_obs::span(wow_obs::Op::LockAcquire);
        let entry = self.tables.entry(table.to_string()).or_default();
        let blockers: Vec<Locker> = match mode {
            LockMode::Shared => match entry.exclusive {
                Some(x) if x != who => vec![x],
                _ => Vec::new(),
            },
            LockMode::Exclusive => {
                let mut b: Vec<Locker> =
                    entry.shared.iter().copied().filter(|&s| s != who).collect();
                if let Some(x) = entry.exclusive {
                    if x != who {
                        b.push(x);
                    }
                }
                b.sort_unstable();
                b.dedup();
                b
            }
        };
        if blockers.is_empty() {
            match mode {
                LockMode::Shared => {
                    // An X holder taking S keeps X (it covers S).
                    if entry.exclusive != Some(who) {
                        entry.shared.insert(who);
                    }
                }
                LockMode::Exclusive => {
                    entry.shared.remove(&who); // upgrade
                    entry.exclusive = Some(who);
                }
            }
            self.waits_for.remove(&who);
            self.grants += 1;
            span.arg(0);
            return LockOutcome::Granted;
        }
        // Would the wait close a cycle?
        if self.would_deadlock(who, &blockers) {
            self.deadlocks += 1;
            span.arg(2);
            return LockOutcome::Deadlock;
        }
        self.waits_for
            .entry(who)
            .or_default()
            .extend(blockers.iter().copied());
        self.conflicts += 1;
        span.arg(1);
        LockOutcome::Conflict { blockers }
    }

    /// Whether `who` waiting on `on` reaches back to `who`.
    fn would_deadlock(&self, who: Locker, on: &[Locker]) -> bool {
        let mut stack: Vec<Locker> = on.to_vec();
        let mut seen: HashSet<Locker> = HashSet::new();
        while let Some(s) = stack.pop() {
            if s == who {
                return true;
            }
            if !seen.insert(s) {
                continue;
            }
            if let Some(next) = self.waits_for.get(&s) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Release every lock `who` holds (end of transaction — strict 2PL).
    pub fn release_all(&mut self, who: Locker) {
        for lock in self.tables.values_mut() {
            lock.shared.remove(&who);
            if lock.exclusive == Some(who) {
                lock.exclusive = None;
            }
        }
        self.waits_for.remove(&who);
        // Nobody waits on a session that holds nothing.
        for waits in self.waits_for.values_mut() {
            waits.remove(&who);
        }
    }

    /// Locks `who` currently holds, as `(table, mode)` pairs (sorted).
    pub fn held_by(&self, who: Locker) -> Vec<(String, LockMode)> {
        let mut out: Vec<(String, LockMode)> = self
            .tables
            .iter()
            .filter_map(|(t, l)| {
                if l.exclusive == Some(who) {
                    Some((t.clone(), LockMode::Exclusive))
                } else if l.shared.contains(&who) {
                    Some((t.clone(), LockMode::Shared))
                } else {
                    None
                }
            })
            .collect();
        out.sort();
        out
    }

    /// Whether anybody holds any lock on `table`.
    pub fn is_locked(&self, table: &str) -> bool {
        self.tables
            .get(table)
            .is_some_and(|l| l.exclusive.is_some() || !l.shared.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(1, "emp", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(2, "emp", LockMode::Shared), LockOutcome::Granted);
        assert!(lm.is_locked("emp"));
        assert_eq!(lm.held_by(1), vec![("emp".to_string(), LockMode::Shared)]);
    }

    #[test]
    fn exclusive_excludes() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(1, "emp", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(2, "emp", LockMode::Shared),
            LockOutcome::Conflict { blockers: vec![1] }
        );
        assert_eq!(
            lm.acquire(2, "emp", LockMode::Exclusive),
            LockOutcome::Conflict { blockers: vec![1] }
        );
        lm.release_all(1);
        assert_eq!(
            lm.acquire(2, "emp", LockMode::Exclusive),
            LockOutcome::Granted
        );
    }

    #[test]
    fn reacquire_is_idempotent_and_upgrade_works() {
        let mut lm = LockManager::new();
        assert_eq!(lm.acquire(1, "emp", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(lm.acquire(1, "emp", LockMode::Shared), LockOutcome::Granted);
        // Upgrade S → X with no other holders.
        assert_eq!(
            lm.acquire(1, "emp", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.held_by(1),
            vec![("emp".to_string(), LockMode::Exclusive)]
        );
        // X covers S.
        assert_eq!(lm.acquire(1, "emp", LockMode::Shared), LockOutcome::Granted);
        assert_eq!(
            lm.held_by(1),
            vec![("emp".to_string(), LockMode::Exclusive)]
        );
    }

    #[test]
    fn upgrade_blocked_by_other_readers() {
        let mut lm = LockManager::new();
        lm.acquire(1, "emp", LockMode::Shared);
        lm.acquire(2, "emp", LockMode::Shared);
        assert_eq!(
            lm.acquire(1, "emp", LockMode::Exclusive),
            LockOutcome::Conflict { blockers: vec![2] }
        );
    }

    #[test]
    fn deadlock_detected_on_cycle() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(1, "emp", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(2, "dept", LockMode::Exclusive),
            LockOutcome::Granted
        );
        // 1 waits on dept (held by 2).
        assert!(matches!(
            lm.acquire(1, "dept", LockMode::Exclusive),
            LockOutcome::Conflict { .. }
        ));
        // 2 requesting emp would close the cycle.
        assert_eq!(
            lm.acquire(2, "emp", LockMode::Exclusive),
            LockOutcome::Deadlock
        );
        assert_eq!(lm.deadlocks, 1);
        // 2 gives up its locks; 1 can proceed.
        lm.release_all(2);
        assert_eq!(
            lm.acquire(1, "dept", LockMode::Exclusive),
            LockOutcome::Granted
        );
    }

    #[test]
    fn three_party_deadlock_cycle() {
        let mut lm = LockManager::new();
        lm.acquire(1, "a", LockMode::Exclusive);
        lm.acquire(2, "b", LockMode::Exclusive);
        lm.acquire(3, "c", LockMode::Exclusive);
        assert!(matches!(
            lm.acquire(1, "b", LockMode::Exclusive),
            LockOutcome::Conflict { .. }
        ));
        assert!(matches!(
            lm.acquire(2, "c", LockMode::Exclusive),
            LockOutcome::Conflict { .. }
        ));
        assert_eq!(
            lm.acquire(3, "a", LockMode::Exclusive),
            LockOutcome::Deadlock
        );
    }

    #[test]
    fn release_clears_waits() {
        let mut lm = LockManager::new();
        lm.acquire(1, "emp", LockMode::Exclusive);
        let _ = lm.acquire(2, "emp", LockMode::Shared); // 2 waits on 1
        lm.release_all(1);
        // No stale edge: 1 requesting what 2 now takes must not "deadlock".
        assert_eq!(
            lm.acquire(2, "emp", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert!(matches!(
            lm.acquire(1, "emp", LockMode::Shared),
            LockOutcome::Conflict { .. }
        ));
    }

    #[test]
    fn counters_track_activity() {
        let mut lm = LockManager::new();
        lm.acquire(1, "emp", LockMode::Exclusive);
        let _ = lm.acquire(2, "emp", LockMode::Shared);
        assert_eq!(lm.grants, 1);
        assert_eq!(lm.conflicts, 1);
    }

    #[test]
    fn different_tables_do_not_conflict() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(1, "emp", LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(2, "dept", LockMode::Exclusive),
            LockOutcome::Granted
        );
    }
}
