//! Editing through the window: the update path of the paper.
//!
//! The protocol for every write is the same five steps:
//!
//! 1. take an exclusive lock on the base relation,
//! 2. translate the form edit into base-table DML through the view,
//! 3. record the inverse on the session's undo stack,
//! 4. release the lock (strict 2PL, transaction = one commit), and
//! 5. **propagate**: refresh every other window whose view overlaps.

use crate::error::{WowError, WowResult};
use crate::locks::LockMode;
use crate::session::SessionId;
use crate::undo::UndoEntry;
use crate::window_mgr::{Mode, WinId};
use crate::world::World;
use wow_rel::delta::BaseDelta;
use wow_rel::tuple::Tuple;
use wow_rel::value::Value;
use wow_views::translate::{delete_through_view, insert_through_view, update_through_view};

impl World {
    /// Enter Edit mode on the current row.
    pub fn enter_edit(&mut self, win: WinId) -> WowResult<()> {
        let w = self.window_mut(win)?;
        if !matches!(w.mode, Mode::Browse) {
            return Err(WowError::WrongMode {
                wanted: "edit",
                mode: w.mode.name(),
            });
        }
        let Some(upd) = &w.upd else {
            return Err(WowError::ReadOnly {
                view: w.view.clone(),
                reasons: w.read_only_reasons.clone(),
            });
        };
        let _ = upd;
        let Some((_, tuple)) = w.cursor.current_row() else {
            return Err(WowError::NoCurrentRow);
        };
        w.original = Some(tuple.values.clone());
        w.form.fill(&tuple.values);
        w.mode = Mode::Edit;
        w.status.clear();
        Ok(())
    }

    /// Enter Insert mode with a blank form.
    pub fn enter_insert(&mut self, win: WinId) -> WowResult<()> {
        let w = self.window_mut(win)?;
        if !matches!(w.mode, Mode::Browse) {
            return Err(WowError::WrongMode {
                wanted: "insert",
                mode: w.mode.name(),
            });
        }
        if w.upd.is_none() {
            return Err(WowError::ReadOnly {
                view: w.view.clone(),
                reasons: w.read_only_reasons.clone(),
            });
        }
        w.form.clear();
        w.original = None;
        w.mode = Mode::Insert;
        w.status.clear();
        Ok(())
    }

    /// Leave Edit/Insert/Query mode without committing. A window that went
    /// stale while the user was typing catches up the moment it returns to
    /// Browse — no manual refresh required.
    pub fn cancel_mode(&mut self, win: WinId) -> WowResult<()> {
        let stale = {
            let w = self.window_mut(win)?;
            w.mode = Mode::Browse;
            w.original = None;
            w.status.clear();
            w.show_current();
            w.stale
        };
        if stale {
            self.refresh_window(win)?;
            self.stats.full_refreshes += 1;
        }
        Ok(())
    }

    /// Commit whatever the window's mode has pending (Enter key).
    pub fn commit(&mut self, win: WinId) -> WowResult<()> {
        match self.window(win)?.mode {
            Mode::Edit => self.commit_edit(win),
            Mode::Insert => self.commit_insert(win),
            Mode::Query => self.apply_query(win),
            Mode::Browse => Ok(()), // Enter in browse is a no-op
        }
    }

    /// Commit an edit: write the dirty fields through the view.
    pub fn commit_edit(&mut self, win: WinId) -> WowResult<()> {
        let (session, view, upd, rid, original) = {
            let w = self.window(win)?;
            if !matches!(w.mode, Mode::Edit) {
                return Err(WowError::WrongMode {
                    wanted: "commit an edit",
                    mode: w.mode.name(),
                });
            }
            let upd = w.upd.clone().expect("edit mode requires updatability");
            let Some((Some(rid), _)) = w.cursor.current_row() else {
                return Err(WowError::NoCurrentRow);
            };
            (
                w.session,
                w.view.clone(),
                upd,
                rid,
                w.original.clone().unwrap_or_default(),
            )
        };
        // Validate the form and compute the dirty assignment set.
        let (values, dirty) = {
            let w = self.window(win)?;
            let values = w.form.values()?;
            let dirty = w.form.dirty_fields(&original);
            (values, dirty)
        };
        if dirty.is_empty() {
            let w = self.window_mut(win)?;
            w.mode = Mode::Browse;
            w.status = "no changes".into();
            return Ok(());
        }
        let assigns: Vec<(usize, Value)> = dirty.iter().map(|&i| (i, values[i].clone())).collect();
        let mut span = wow_obs::span(wow_obs::Op::Commit);
        span.arg(assigns.len() as u64);
        // Lock, snapshot the old base row (for undo and the delta), write,
        // re-read the new image, unlock.
        self.lock(session, &upd.base_table, LockMode::Exclusive)?;
        let result = (|| -> WowResult<(Tuple, Tuple)> {
            let info = self.db_mut().catalog().table(&upd.base_table)?.clone();
            let old_base = self
                .db_mut()
                .get_row(info.id, rid)?
                .ok_or(WowError::NoCurrentRow)?;
            let check = self.config().check_option;
            update_through_view(self.db_mut(), &upd, rid, &assigns, check)?;
            let new_base = self
                .db_mut()
                .get_row(info.id, rid)?
                .ok_or(WowError::NoCurrentRow)?;
            Ok((old_base, new_base))
        })();
        self.maybe_release(session);
        let (old_base, new_base) = result?;
        self.undo_stack(session)?.push(UndoEntry::Update {
            table: upd.base_table.clone(),
            rid,
            old: old_base.values.clone(),
        });
        self.stats.commits += 1;
        self.session_mut(session)?.commits += 1;
        // Back to browse; refresh self; propagate the delta to overlapping
        // windows.
        {
            let w = self.window_mut(win)?;
            w.mode = Mode::Browse;
            w.original = None;
            w.status = "saved".into();
        }
        self.refresh_window(win)?;
        let delta = BaseDelta::update(upd.base_table.clone(), rid, old_base, new_base);
        self.propagate_delta(&delta, Some(win))?;
        span.finish();
        let _ = view;
        Ok(())
    }

    /// Commit an insert: the blank form becomes a new row.
    pub fn commit_insert(&mut self, win: WinId) -> WowResult<()> {
        let (session, upd) = {
            let w = self.window(win)?;
            if !matches!(w.mode, Mode::Insert) {
                return Err(WowError::WrongMode {
                    wanted: "commit an insert",
                    mode: w.mode.name(),
                });
            }
            (
                w.session,
                w.upd.clone().expect("insert mode requires updatability"),
            )
        };
        let values = self.window(win)?.form.values()?;
        let span = wow_obs::span(wow_obs::Op::Commit);
        self.lock(session, &upd.base_table, LockMode::Exclusive)?;
        let result = (|| -> WowResult<wow_storage::Rid> {
            let check = self.config().check_option;
            Ok(insert_through_view(self.db_mut(), &upd, &values, check)?)
        })();
        self.maybe_release(session);
        let rid = result?;
        self.undo_stack(session)?.push(UndoEntry::Insert {
            table: upd.base_table.clone(),
            rid,
        });
        self.stats.commits += 1;
        self.session_mut(session)?.commits += 1;
        {
            let w = self.window_mut(win)?;
            w.mode = Mode::Browse;
            w.status = "inserted".into();
        }
        self.refresh_window(win)?;
        let info = self.db_mut().catalog().table(&upd.base_table)?.clone();
        let new_row = self
            .db_mut()
            .get_row(info.id, rid)?
            .ok_or(WowError::NoCurrentRow)?;
        let delta = BaseDelta::insert(upd.base_table.clone(), rid, new_row);
        self.propagate_delta(&delta, Some(win))?;
        span.finish();
        Ok(())
    }

    /// Delete the current row (Browse mode).
    pub fn delete_current(&mut self, win: WinId) -> WowResult<()> {
        let (session, upd, rid, old_view_row) = {
            let w = self.window(win)?;
            if !matches!(w.mode, Mode::Browse) {
                return Err(WowError::WrongMode {
                    wanted: "delete",
                    mode: w.mode.name(),
                });
            }
            let Some(upd) = w.upd.clone() else {
                return Err(WowError::ReadOnly {
                    view: w.view.clone(),
                    reasons: w.read_only_reasons.clone(),
                });
            };
            let Some((Some(rid), row)) = w.cursor.current_row() else {
                return Err(WowError::NoCurrentRow);
            };
            (w.session, upd, rid, row)
        };
        let _ = old_view_row;
        let span = wow_obs::span(wow_obs::Op::Commit);
        self.lock(session, &upd.base_table, LockMode::Exclusive)?;
        let result = (|| -> WowResult<Tuple> {
            let info = self.db_mut().catalog().table(&upd.base_table)?.clone();
            let old_base = self
                .db_mut()
                .get_row(info.id, rid)?
                .ok_or(WowError::NoCurrentRow)?;
            delete_through_view(self.db_mut(), &upd, rid)?;
            Ok(old_base)
        })();
        self.maybe_release(session);
        let old = result?;
        self.undo_stack(session)?.push(UndoEntry::Delete {
            table: upd.base_table.clone(),
            old: old.values.clone(),
        });
        self.stats.commits += 1;
        self.session_mut(session)?.commits += 1;
        self.set_status(win, "deleted");
        self.refresh_window(win)?;
        let delta = BaseDelta::delete(upd.base_table.clone(), rid, old);
        self.propagate_delta(&delta, Some(win))?;
        span.finish();
        Ok(())
    }

    /// Undo the session's most recent write.
    pub fn undo_last(&mut self, session: SessionId) -> WowResult<()> {
        let entry = self
            .undo_stack(session)?
            .pop()
            .ok_or(WowError::NothingToUndo)?;
        let table = match &entry {
            UndoEntry::Update { table, .. }
            | UndoEntry::Insert { table, .. }
            | UndoEntry::Delete { table, .. } => table.clone(),
        };
        self.lock(session, &table, LockMode::Exclusive)?;
        let result = self.apply_undo_entry(entry);
        self.maybe_release(session);
        let delta = result?;
        self.propagate_delta(&delta, None)?;
        Ok(())
    }

    /// Apply the inverse write and return the delta it produced (empty when
    /// the target row no longer exists).
    fn apply_undo_entry(&mut self, entry: UndoEntry) -> WowResult<BaseDelta> {
        match entry {
            UndoEntry::Update { table, rid, old } => {
                let info = self.db_mut().catalog().table(&table)?.clone();
                let before = self.db_mut().get_row(info.id, rid)?;
                let mut delta = BaseDelta::new(&table);
                if self.db_mut().update_rid(&table, rid, old)? {
                    let after = self.db_mut().get_row(info.id, rid)?;
                    if let (Some(before), Some(after)) = (before, after) {
                        delta.updated.push((rid, before, after));
                    }
                }
                Ok(delta)
            }
            UndoEntry::Insert { table, rid } => {
                let info = self.db_mut().catalog().table(&table)?.clone();
                let before = self.db_mut().get_row(info.id, rid)?;
                let mut delta = BaseDelta::new(&table);
                if self.db_mut().delete_rid(&table, rid)? {
                    if let Some(before) = before {
                        delta.deleted.push((rid, before));
                    }
                }
                Ok(delta)
            }
            UndoEntry::Delete { table, old } => {
                let rid = self.db_mut().insert(&table, old)?;
                let info = self.db_mut().catalog().table(&table)?.clone();
                let row = self
                    .db_mut()
                    .get_row(info.id, rid)?
                    .ok_or(WowError::NoCurrentRow)?;
                Ok(BaseDelta::insert(table, rid, row))
            }
        }
    }

    // -- Batch transactions ---------------------------------------------------
    //
    // A batch groups several through-window commits into one atomic unit:
    // locks taken by each commit are *held* until the batch ends (strict
    // 2PL over the whole batch), and `abort_batch` rolls every write back.

    /// Begin a batch transaction for a session.
    pub fn begin_batch(&mut self, session: SessionId) -> WowResult<()> {
        let mark = self.undo_stack(session)?.len();
        let s = self.session_mut(session)?;
        if s.batch_mark.is_some() {
            return Err(WowError::Rel(wow_rel::RelError::Txn(
                "batch already open for this session",
            )));
        }
        s.batch_mark = Some(mark);
        Ok(())
    }

    /// Commit a batch: keep every write, release the session's locks.
    pub fn commit_batch(&mut self, session: SessionId) -> WowResult<()> {
        let s = self.session_mut(session)?;
        if s.batch_mark.take().is_none() {
            return Err(WowError::Rel(wow_rel::RelError::Txn("no open batch")));
        }
        self.release_locks(session);
        Ok(())
    }

    /// Abort a batch: undo every write made since `begin_batch`, release
    /// locks, refresh affected windows. Returns the number of writes
    /// rolled back.
    pub fn abort_batch(&mut self, session: SessionId) -> WowResult<u64> {
        let mark = {
            let s = self.session_mut(session)?;
            s.batch_mark
                .take()
                .ok_or(WowError::Rel(wow_rel::RelError::Txn("no open batch")))?
        };
        let mut tables: Vec<String> = Vec::new();
        let mut undone = 0;
        while self.undo_stack(session)?.len() > mark {
            let entry = self.undo_stack(session)?.pop().expect("len checked");
            let table = match &entry {
                UndoEntry::Update { table, .. }
                | UndoEntry::Insert { table, .. }
                | UndoEntry::Delete { table, .. } => table.clone(),
            };
            // The session still holds its batch locks, so the inverse
            // writes cannot be blocked by anyone else.
            self.apply_undo_entry(entry)?;
            if !tables.contains(&table) {
                tables.push(table);
            }
            undone += 1;
        }
        self.release_locks(session);
        for t in tables {
            self.propagate_write(&t, None)?;
        }
        Ok(undone)
    }

    /// Release the session's locks unless it is inside a batch (strict 2PL
    /// holds them until the batch ends).
    fn maybe_release(&mut self, session: SessionId) {
        let in_batch = self
            .session_mut(session)
            .map(|s| s.batch_mark.is_some())
            .unwrap_or(false);
        if !in_batch {
            self.release_locks(session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use wow_tui::event::parse_script;

    fn world() -> (World, SessionId, WinId) {
        let mut w = World::new(WorldConfig::default());
        w.db_mut()
            .run("CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT) RANGE OF e IS emp")
            .unwrap();
        for (n, d, s) in [("alice", "toy", 120), ("bob", "shoe", 90)] {
            w.db_mut()
                .run(&format!(
                    r#"APPEND TO emp (name = "{n}", dept = "{d}", salary = {s})"#
                ))
                .unwrap();
        }
        w.define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .unwrap();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        (w, s, win)
    }

    fn send(w: &mut World, script: &str) {
        for k in parse_script(script) {
            w.handle_key(k).unwrap();
        }
    }

    #[test]
    fn edit_commit_through_keys() {
        let (mut w, _, win) = world();
        // 'e' enters edit on alice; tab to salary (dept writable too: name,
        // dept, salary all writable) — focus starts at name.
        send(
            &mut w,
            "e<tab><tab><end><backspace><backspace><backspace>200<enter>",
        );
        let row = w.current_row(win).unwrap().unwrap();
        assert_eq!(row.values[2].to_string(), "200");
        // The base table saw it.
        let rows = w
            .db_mut()
            .run(r#"RANGE OF e IS emp RETRIEVE (e.salary) WHERE e.name = "alice""#)
            .unwrap();
        assert_eq!(rows.tuples[0].values[0].to_string(), "200");
        assert_eq!(w.stats.commits, 1);
    }

    #[test]
    fn edit_requires_a_row_and_updatability() {
        let (mut w, s, _) = world();
        w.define_view(
            "totals",
            "RANGE OF e IS emp RETRIEVE (e.dept, t = SUM(e.salary)) GROUP BY e.dept",
        )
        .unwrap();
        let ro = w.open_window(s, "totals", None).unwrap();
        assert!(matches!(w.enter_edit(ro), Err(WowError::ReadOnly { .. })));
        assert!(!w.window(ro).unwrap().is_updatable());
    }

    #[test]
    fn insert_commit_and_undo() {
        let (mut w, s, win) = world();
        w.enter_insert(win).unwrap();
        {
            let form = &mut w.window_mut(win).unwrap().form;
            form.set_text(0, "carol");
            form.set_text(1, "toy");
            form.set_text(2, "150");
        }
        w.commit(win).unwrap();
        let rows = w
            .db_mut()
            .run("RANGE OF e IS emp RETRIEVE (n = COUNT(e.name))")
            .unwrap();
        assert_eq!(rows.tuples[0].values[0].to_string(), "3");
        // Undo removes it again.
        w.undo_last(s).unwrap();
        let rows = w.db_mut().run("RETRIEVE (n = COUNT(e.name))").unwrap();
        assert_eq!(rows.tuples[0].values[0].to_string(), "2");
        assert!(matches!(w.undo_last(s), Err(WowError::NothingToUndo)));
    }

    #[test]
    fn delete_and_undo_restores_row() {
        let (mut w, s, win) = world();
        w.delete_current(win).unwrap(); // deletes alice
        let row = w.current_row(win).unwrap().unwrap();
        assert_eq!(row.values[0].to_string(), "bob");
        w.undo_last(s).unwrap();
        w.refresh_window(win).unwrap();
        let names = {
            let rows = w.db_mut().run("RETRIEVE (e.name) SORT BY e.name").unwrap();
            rows.tuples.len()
        };
        assert_eq!(names, 2);
    }

    #[test]
    fn validation_failure_keeps_edit_mode() {
        let (mut w, _, win) = world();
        w.enter_edit(win).unwrap();
        w.window_mut(win).unwrap().form.set_text(2, "not-a-number");
        // Enter attempts the commit; the error lands in the status line.
        w.handle_key(wow_tui::event::Key::Enter).unwrap();
        let state = w.window(win).unwrap();
        assert_eq!(state.mode, Mode::Edit);
        assert!(state.status.contains("number"), "{}", state.status);
    }

    #[test]
    fn escape_cancels_without_writing() {
        let (mut w, _, win) = world();
        send(&mut w, "e<tab><tab>999<esc>");
        assert_eq!(w.window(win).unwrap().mode, Mode::Browse);
        let rows = w
            .db_mut()
            .run(r#"RETRIEVE (e.salary) WHERE e.name = "alice""#)
            .unwrap();
        assert_eq!(rows.tuples[0].values[0].to_string(), "120");
    }

    #[test]
    fn pk_edit_rewrites_key() {
        let (mut w, _, win) = world();
        w.enter_edit(win).unwrap();
        w.window_mut(win).unwrap().form.set_text(0, "alicia");
        w.commit(win).unwrap();
        let rows = w
            .db_mut()
            .run(r#"RETRIEVE (e.name) WHERE e.name = "alicia""#)
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn edit_without_current_row_errors() {
        let mut w = World::new(WorldConfig::default());
        w.db_mut().run("CREATE TABLE t (k INT KEY)").unwrap();
        w.define_view("tv", "RANGE OF x IS t RETRIEVE (x.k)")
            .unwrap();
        let s = w.open_session();
        let win = w.open_window(s, "tv", None).unwrap();
        assert!(matches!(w.enter_edit(win), Err(WowError::NoCurrentRow)));
    }
}
