//! User sessions.

use crate::window_mgr::WinId;
use std::fmt;

/// Identifier of a session (one user at one terminal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {}", self.0)
    }
}

/// A session: a user with a set of open windows and (while a write is in
/// flight) a set of locks.
#[derive(Debug, Default)]
pub struct Session {
    /// Windows owned by this session, in creation order.
    pub windows: Vec<WinId>,
    /// Writes committed by this session (status display, tests).
    pub commits: u64,
    /// When a batch transaction is open: the undo-stack depth at `BEGIN`,
    /// so `abort_batch` knows how far to roll back. Locks taken by commits
    /// are held (strict 2PL) until the batch ends.
    pub batch_mark: Option<usize>,
}

impl Session {
    /// A fresh session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Register a window.
    pub fn add_window(&mut self, w: WinId) {
        self.windows.push(w);
    }

    /// Deregister a window.
    pub fn remove_window(&mut self, w: WinId) {
        self.windows.retain(|&x| x != w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bookkeeping() {
        let mut s = Session::new();
        s.add_window(WinId(1));
        s.add_window(WinId(2));
        s.remove_window(WinId(1));
        assert_eq!(s.windows, vec![WinId(2)]);
    }

    #[test]
    fn display() {
        assert_eq!(SessionId(3).to_string(), "session 3");
    }
}
