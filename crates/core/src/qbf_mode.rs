//! Query-by-form: restricting a window to the rows the user described.

use crate::browse::BrowseCursor;
use crate::error::{WowError, WowResult};
use crate::window_mgr::{Mode, WinId};
use crate::world::World;
use wow_forms::qbf::form_predicate;
use wow_views::expand::ViewQuery;

impl World {
    /// Enter Query mode: the form goes blank and collects restrictions.
    pub fn enter_query(&mut self, win: WinId) -> WowResult<()> {
        let w = self.window_mut(win)?;
        if !matches!(w.mode, Mode::Browse) {
            return Err(WowError::WrongMode {
                wanted: "query",
                mode: w.mode.name(),
            });
        }
        w.form.clear();
        // QBF entries go into every field, including normally read-only
        // ones — querying a computed column is legal. Temporarily lift
        // read-only by swapping in a writable spec copy.
        let mut spec = w.form.spec.clone();
        for f in &mut spec.fields {
            f.read_only = false;
            f.required = false;
        }
        w.form = wow_forms::FormInstance::new(spec);
        w.mode = Mode::Query;
        w.status = "enter restrictions; Enter runs, Esc cancels".into();
        Ok(())
    }

    /// Execute the query entered on the form (Enter in Query mode).
    pub fn apply_query(&mut self, win: WinId) -> WowResult<()> {
        let (pred, view, upd) = {
            let w = self.window(win)?;
            if !matches!(w.mode, Mode::Query) {
                return Err(WowError::WrongMode {
                    wanted: "run a query",
                    mode: w.mode.name(),
                });
            }
            let entries = w.form.texts();
            let pred = form_predicate(&w.form.spec, &entries)?;
            (pred, w.view.clone(), w.upd.clone())
        };
        // Rebuild the cursor under the restriction.
        let page_size = self.config().page_size;
        let cursor = match &upd {
            Some(u) => {
                let pk_index = format!("pk_{}", u.base_table);
                if self.db().catalog().index(&pk_index).is_ok() {
                    BrowseCursor::indexed(self.db_mut(), u, &pk_index, page_size, pred.clone())?
                } else {
                    let query = ViewQuery {
                        pred: pred.clone(),
                        ..Default::default()
                    };
                    let (db, vc, _) = self.parts(win)?;
                    BrowseCursor::materialized(db, vc, &view, query, Some(u))?
                }
            }
            None => {
                let query = ViewQuery {
                    pred: pred.clone(),
                    ..Default::default()
                };
                let (db, vc, _) = self.parts(win)?;
                BrowseCursor::streamed(db, vc, &view, query, page_size)?
            }
        };
        // Restore the original (writability-correct) form.
        let schema = self.window(win)?.schema.clone();
        let writable: Vec<bool> = match &upd {
            Some(u) => (0..schema.len()).map(|i| u.is_writable(i)).collect(),
            None => vec![false; schema.len()],
        };
        let spec = wow_forms::compiler::compile_form(&view, &view, &schema, &writable);
        let matched = {
            let w = self.window_mut(win)?;
            w.cursor = cursor;
            w.form = wow_forms::FormInstance::new(spec);
            w.qbf_pred = pred;
            w.mode = Mode::Browse;
            // The rebuilt cursor read the current data, so any staleness
            // accrued while the user typed the query is gone.
            w.stale = false;
            w.show_current();
            !w.cursor.is_empty()
        };
        self.set_status(
            win,
            if matched {
                ""
            } else {
                "no rows match the query"
            },
        );
        Ok(())
    }

    /// Drop the window's active restriction and show everything again.
    pub fn clear_query(&mut self, win: WinId) -> WowResult<()> {
        let (view, upd) = {
            let w = self.window(win)?;
            if w.qbf_pred.is_none() {
                return Ok(());
            }
            (w.view.clone(), w.upd.clone())
        };
        let page_size = self.config().page_size;
        let cursor = match &upd {
            Some(u) => {
                let pk_index = format!("pk_{}", u.base_table);
                if self.db().catalog().index(&pk_index).is_ok() {
                    BrowseCursor::indexed(self.db_mut(), u, &pk_index, page_size, None)?
                } else {
                    let (db, vc, _) = self.parts(win)?;
                    BrowseCursor::materialized(db, vc, &view, ViewQuery::default(), Some(u))?
                }
            }
            None => {
                let (db, vc, _) = self.parts(win)?;
                BrowseCursor::streamed(db, vc, &view, ViewQuery::default(), page_size)?
            }
        };
        let w = self.window_mut(win)?;
        w.cursor = cursor;
        w.qbf_pred = None;
        w.stale = false;
        w.status.clear();
        w.show_current();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::WorldConfig;
    use crate::window_mgr::Mode;
    use crate::world::World;
    use wow_tui::event::parse_script;

    fn world() -> (World, crate::session::SessionId, crate::window_mgr::WinId) {
        let mut w = World::new(WorldConfig::default());
        w.db_mut()
            .run("CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)")
            .unwrap();
        for (n, d, s) in [
            ("alice", "toy", 120),
            ("bob", "shoe", 90),
            ("carol", "toy", 150),
            ("dave", "candy", 70),
        ] {
            w.db_mut()
                .run(&format!(
                    r#"APPEND TO emp (name = "{n}", dept = "{d}", salary = {s})"#
                ))
                .unwrap();
        }
        w.define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .unwrap();
        let s = w.open_session();
        let win = w.open_window(s, "emps", None).unwrap();
        (w, s, win)
    }

    fn send(w: &mut World, script: &str) {
        for k in parse_script(script) {
            w.handle_key(k).unwrap();
        }
    }

    #[test]
    fn query_narrows_browse() {
        let (mut w, _, win) = world();
        // 'q' enter query; type dept restriction in field 2 (tab once from
        // name), salary > 100 in field 3.
        send(&mut w, "q<tab>toy<tab>>100<enter>");
        assert_eq!(w.window(win).unwrap().mode, Mode::Browse);
        let row = w.current_row(win).unwrap().unwrap();
        assert_eq!(row.values[0].to_string(), "alice");
        assert!(w.browse_next(win).unwrap());
        let row = w.current_row(win).unwrap().unwrap();
        assert_eq!(row.values[0].to_string(), "carol");
        assert!(!w.browse_next(win).unwrap(), "only two matches");
    }

    #[test]
    fn patterns_and_clear() {
        let (mut w, _, win) = world();
        send(&mut w, "q?a*<enter>"); // names with 'a' second letter: carol? no — ?a* = 2nd char a: carol(no, c-a yes!), dave(d-a yes)
        let mut names = Vec::new();
        loop {
            let row = w.current_row(win).unwrap();
            match row {
                Some(t) => names.push(t.values[0].to_string()),
                None => break,
            }
            if !w.browse_next(win).unwrap() {
                break;
            }
        }
        assert_eq!(names, vec!["carol", "dave"]);
        // 'x' clears the restriction.
        send(&mut w, "x");
        assert!(w.window(win).unwrap().qbf_pred.is_none());
        let row = w.current_row(win).unwrap().unwrap();
        assert_eq!(row.values[0].to_string(), "alice");
    }

    #[test]
    fn no_matches_reports_and_stays_sane() {
        let (mut w, _, win) = world();
        send(&mut w, "qzzz<enter>");
        assert!(w.current_row(win).unwrap().is_none());
        assert!(w.window(win).unwrap().status.contains("no rows"));
        // Editing with no row errors cleanly.
        assert!(w.enter_edit(win).is_err());
    }

    #[test]
    fn bad_query_entry_reports_error() {
        let (mut w, _, win) = world();
        send(&mut w, "q<tab><tab>abc<enter>"); // salary expects a number
        let state = w.window(win).unwrap();
        assert_eq!(state.mode, Mode::Query, "stay in query mode to fix it");
        assert!(state.status.contains("number"), "{}", state.status);
    }

    #[test]
    fn query_on_read_only_window_works() {
        let (mut w, s, _) = world();
        w.define_view(
            "totals",
            "RANGE OF e IS emp RETRIEVE (e.dept, total = SUM(e.salary)) GROUP BY e.dept",
        )
        .unwrap();
        let win = w.open_window(s, "totals", None).unwrap();
        w.enter_query(win).unwrap();
        {
            let form = &mut w.window_mut(win).unwrap().form;
            form.set_text(0, "toy");
        }
        // Aggregate views reject restrictions at the expansion layer —
        // but materialized cursors with client-side filtering are fine for
        // updatable ones; here we expect a clean error in the status.
        let result = w.apply_query(win);
        assert!(result.is_err() || w.current_row(win).unwrap().is_some());
    }
}
