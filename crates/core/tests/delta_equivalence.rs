//! Delta-propagation equivalence: a browse cursor maintained by pushing
//! typed write deltas through the view algebra must show exactly the same
//! screenful — same rows, same rids, same order — as one maintained by
//! re-running its query after every write.
//!
//! Two worlds receive identical random write sequences; one has
//! `delta_propagation` on (cursors are patched in place), the other off
//! (every dependent window re-queries). After every single write, every
//! watcher window's page must agree across the worlds.

use proptest::prelude::*;
use wow_core::config::WorldConfig;
use wow_core::window_mgr::{WinId, WindowStyle};
use wow_core::world::{CursorStrategy, World};
use wow_rel::value::Value;
use wow_storage::Rid;

/// One random write against the base tables.
#[derive(Debug, Clone)]
enum Op {
    /// Insert into `ta` (id assigned by a monotone counter).
    Insert { x: i64, tag: String },
    /// Overwrite the non-key columns of a live `ta` row.
    Update { idx: usize, x: i64, tag: String },
    /// Delete a live `ta` row.
    Delete { idx: usize },
    /// Insert into `tb`, referencing a live `ta` row (or a dangling id).
    InsertB { idx: usize, q: i64, dangle: bool },
    /// Delete a live `tb` row.
    DeleteB { idx: usize },
}

fn tag_strategy() -> impl Strategy<Value = String> {
    prop_oneof![Just("red"), Just("blue"), Just("green")].prop_map(|s| s.to_string())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((-2i64..8), tag_strategy()).prop_map(|(x, tag)| Op::Insert { x, tag }),
        ((0usize..16), (-2i64..8), tag_strategy()).prop_map(|(idx, x, tag)| Op::Update {
            idx,
            x,
            tag
        }),
        (0usize..16).prop_map(|idx| Op::Delete { idx }),
        ((0usize..16), (0i64..100), any::<bool>()).prop_map(|(idx, q, dangle)| Op::InsertB {
            idx,
            q,
            dangle
        }),
        (0usize..16).prop_map(|idx| Op::DeleteB { idx }),
    ]
}

/// Live-row bookkeeping shared by both worlds. The rids returned by the two
/// worlds must stay identical (same storage, same op order), which we assert
/// as we go — it is what makes a single list valid for both.
struct Live {
    /// (id, rid) of live `ta` rows.
    a: Vec<(i64, Rid)>,
    /// rids of live `tb` rows.
    b: Vec<Rid>,
    next_id: i64,
    next_b_id: i64,
}

fn build_world(delta_on: bool, rows: &[(i64, String)], with_join: bool) -> (World, Vec<WinId>) {
    let mut w = World::new(WorldConfig {
        delta_propagation: delta_on,
        page_size: 5,
        ..WorldConfig::default()
    });
    w.db_mut()
        .run(
            "CREATE TABLE ta (id INT KEY, x INT, tag TEXT)
             CREATE TABLE tb (id INT KEY, aid INT, q INT)
             CREATE INDEX tb_aid ON tb (aid) USING HASH
             RANGE OF a IS ta
             RANGE OF b IS tb",
        )
        .unwrap();
    for (i, (x, tag)) in rows.iter().enumerate() {
        w.db_mut()
            .insert(
                "ta",
                vec![
                    Value::Int(i as i64),
                    Value::Int(*x),
                    Value::text(tag.clone()),
                ],
            )
            .unwrap();
    }
    w.define_view("va", "RANGE OF a IS ta RETRIEVE (a.id, a.x, a.tag)")
        .unwrap();
    w.define_view(
        "va_sel",
        "RANGE OF a IS ta RETRIEVE (a.id, a.tag) WHERE a.x >= 3",
    )
    .unwrap();
    w.define_view(
        "detail",
        "RANGE OF a IS ta RANGE OF b IS tb RETRIEVE (a.tag, b.q) WHERE a.id = b.aid",
    )
    .unwrap();
    let s = w.open_session();
    // An indexed cursor over a selection view and a forced-materialized
    // cursor over the whole table; the join watcher streams.
    let mut wins = vec![
        w.open_window(s, "va_sel", None).unwrap(),
        w.open_window_using(
            s,
            "va",
            None,
            WindowStyle::Form,
            CursorStrategy::Materialized,
        )
        .unwrap(),
    ];
    if with_join {
        wins.push(w.open_window(s, "detail", None).unwrap());
    }
    (w, wins)
}

/// Apply one op to both worlds, keeping the shared live lists in sync.
/// Returns false if the op degenerated to a no-op (empty live list).
fn apply(wd: &mut World, wf: &mut World, live: &mut Live, op: &Op) -> bool {
    match op {
        Op::Insert { x, tag } => {
            let id = live.next_id;
            live.next_id += 1;
            let row = vec![Value::Int(id), Value::Int(*x), Value::text(tag.clone())];
            let ra = wd.apply_insert("ta", row.clone()).unwrap();
            let rb = wf.apply_insert("ta", row).unwrap();
            assert_eq!(ra, rb, "worlds assign different rids");
            live.a.push((id, ra));
            true
        }
        Op::Update { idx, x, tag } => {
            if live.a.is_empty() {
                return false;
            }
            let (id, rid) = live.a[idx % live.a.len()];
            let row = vec![Value::Int(id), Value::Int(*x), Value::text(tag.clone())];
            assert!(wd.apply_update("ta", rid, row.clone()).unwrap());
            assert!(wf.apply_update("ta", rid, row).unwrap());
            true
        }
        Op::Delete { idx } => {
            if live.a.is_empty() {
                return false;
            }
            let (_, rid) = live.a.remove(idx % live.a.len());
            assert!(wd.apply_delete("ta", rid).unwrap());
            assert!(wf.apply_delete("ta", rid).unwrap());
            true
        }
        Op::InsertB { idx, q, dangle } => {
            let aid = if *dangle || live.a.is_empty() {
                -1 // references no ta row: the join delta is provably empty
            } else {
                live.a[idx % live.a.len()].0
            };
            let id = live.next_b_id;
            live.next_b_id += 1;
            let row = vec![Value::Int(id), Value::Int(aid), Value::Int(*q)];
            let ra = wd.apply_insert("tb", row.clone()).unwrap();
            let rb = wf.apply_insert("tb", row).unwrap();
            assert_eq!(ra, rb, "worlds assign different rids");
            live.b.push(ra);
            true
        }
        Op::DeleteB { idx } => {
            if live.b.is_empty() {
                return false;
            }
            let rid = live.b.remove(idx % live.b.len());
            assert!(wd.apply_delete("tb", rid).unwrap());
            assert!(wf.apply_delete("tb", rid).unwrap());
            true
        }
    }
}

/// (id, rid) pairs of the initial `ta` rows, in insertion order.
fn ta_rids(w: &mut World) -> Vec<(i64, Rid)> {
    let id = w.db_mut().catalog().table("ta").unwrap().id;
    w.db_mut()
        .scan_table_raw(id)
        .unwrap()
        .into_iter()
        .map(|(rid, t)| match t.values[0] {
            Value::Int(i) => (i, rid),
            _ => unreachable!(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]
    #[test]
    fn delta_patched_pages_match_requeried_pages(
        rows in proptest::collection::vec(((-2i64..8), tag_strategy()), 0..14),
        ops in proptest::collection::vec(op_strategy(), 1..12),
        page_forward in any::<bool>(),
    ) {
        let (mut wd, wins_d) = build_world(true, &rows, false);
        let (mut wf, wins_f) = build_world(false, &rows, false);
        if page_forward {
            for (a, b) in wins_d.iter().zip(&wins_f) {
                wd.browse_next_page(*a).unwrap();
                wf.browse_next_page(*b).unwrap();
            }
        }
        let mut live = Live {
            a: ta_rids(&mut wd),
            b: Vec::new(),
            next_id: rows.len() as i64,
            next_b_id: 0,
        };
        for op in &ops {
            if !apply(&mut wd, &mut wf, &mut live, op) {
                continue;
            }
            for (a, b) in wins_d.iter().zip(&wins_f) {
                let pa = wd.window(*a).unwrap().cursor.page_rows();
                let pb = wf.window(*b).unwrap().cursor.page_rows();
                prop_assert_eq!(&pa, &pb, "window pages diverged after {:?}", op);
                // The patched cursor must still sit on a row of its page.
                let cursor = &wd.window(*a).unwrap().cursor;
                let current = cursor.current_row();
                prop_assert_eq!(current.is_some(), !pa.is_empty());
                if let Some(row) = current {
                    let at_pos = pa.get(cursor.pos_in_page());
                    prop_assert_eq!(
                        Some(&row),
                        at_pos,
                        "current row not at pos_in_page after {:?}", op
                    );
                }
            }
        }
        // Single-table watchers are deltable by construction: the patched
        // world must never have fallen back to a re-query.
        prop_assert_eq!(wd.stats.full_refreshes, 0);
        prop_assert_eq!(wf.stats.delta_refreshes, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]
    #[test]
    fn join_watchers_stay_consistent(
        rows in proptest::collection::vec(((-2i64..8), tag_strategy()), 0..10),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let (mut wd, wins_d) = build_world(true, &rows, true);
        let (mut wf, wins_f) = build_world(false, &rows, true);
        let mut live = Live {
            a: ta_rids(&mut wd),
            b: Vec::new(),
            next_id: rows.len() as i64,
            next_b_id: 0,
        };
        for op in &ops {
            if !apply(&mut wd, &mut wf, &mut live, op) {
                continue;
            }
            for (a, b) in wins_d.iter().zip(&wins_f) {
                let pa = wd.window(*a).unwrap().cursor.page_rows();
                let pb = wf.window(*b).unwrap().cursor.page_rows();
                prop_assert_eq!(&pa, &pb, "window pages diverged after {:?}", op);
            }
        }
        prop_assert_eq!(wf.stats.delta_refreshes, 0);
    }
}
