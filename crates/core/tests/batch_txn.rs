//! Batch transactions: multiple through-window commits held under one set
//! of locks, atomically committable or abortable.

use wow_core::config::WorldConfig;
use wow_core::locks::LockMode;
use wow_core::world::World;
use wow_rel::value::Value;

fn world() -> World {
    let mut w = World::new(WorldConfig::default());
    w.db_mut()
        .run(
            r#"
            CREATE TABLE acct (id INT KEY, owner TEXT, balance INT)
            RANGE OF a IS acct
            APPEND TO acct (id = 1, owner = "alice", balance = 100)
            APPEND TO acct (id = 2, owner = "bob", balance = 100)
            "#,
        )
        .unwrap();
    w.define_view(
        "accts",
        "RANGE OF a IS acct RETRIEVE (a.id, a.owner, a.balance)",
    )
    .unwrap();
    w
}

fn balance(w: &mut World, id: i64) -> i64 {
    let rows = w
        .db_mut()
        .run(&format!("RETRIEVE (a.balance) WHERE a.id = {id}"))
        .unwrap();
    match rows.tuples[0].values[0] {
        Value::Int(b) => b,
        _ => panic!(),
    }
}

/// Move money via two window edits inside a batch.
fn transfer(w: &mut World, session: wow_core::SessionId, win: wow_core::WinId, amount: i64) {
    // Debit account 1 (cursor starts there).
    w.enter_edit(win).unwrap();
    let from = balance(w, 1);
    w.window_mut(win)
        .unwrap()
        .form
        .set_text(2, &(from - amount).to_string());
    w.commit(win).unwrap();
    let _ = session;
    // Credit account 2.
    w.browse_next(win).unwrap();
    w.enter_edit(win).unwrap();
    let to = balance(w, 2);
    w.window_mut(win)
        .unwrap()
        .form
        .set_text(2, &(to + amount).to_string());
    w.commit(win).unwrap();
}

#[test]
fn commit_batch_keeps_all_writes_and_releases_locks() {
    let mut w = world();
    let s = w.open_session();
    let win = w.open_window(s, "accts", None).unwrap();
    w.begin_batch(s).unwrap();
    transfer(&mut w, s, win, 30);
    // Mid-batch: the session holds X(acct); another session is blocked.
    let other = w.open_session();
    assert!(!w.try_lock(other, "acct", LockMode::Exclusive));
    w.commit_batch(s).unwrap();
    // Now the other session can lock.
    assert!(w.try_lock(other, "acct", LockMode::Exclusive));
    w.release_locks(other);
    assert_eq!(balance(&mut w, 1), 70);
    assert_eq!(balance(&mut w, 2), 130);
    // Invariant: money conserved.
    assert_eq!(balance(&mut w, 1) + balance(&mut w, 2), 200);
}

#[test]
fn abort_batch_rolls_back_everything() {
    let mut w = world();
    let s = w.open_session();
    let win = w.open_window(s, "accts", None).unwrap();
    w.begin_batch(s).unwrap();
    transfer(&mut w, s, win, 45);
    assert_eq!(balance(&mut w, 1), 55, "writes visible inside the batch");
    let undone = w.abort_batch(s).unwrap();
    assert_eq!(undone, 2);
    assert_eq!(balance(&mut w, 1), 100);
    assert_eq!(balance(&mut w, 2), 100);
    // Locks released; windows refreshed to the rolled-back state.
    let other = w.open_session();
    assert!(w.try_lock(other, "acct", LockMode::Exclusive));
    w.release_locks(other);
    let row = w.current_row(win).unwrap().unwrap();
    assert_eq!(row.values[2], Value::Int(100));
}

#[test]
fn batch_with_insert_and_delete_aborts_cleanly() {
    let mut w = world();
    let s = w.open_session();
    let win = w.open_window(s, "accts", None).unwrap();
    w.begin_batch(s).unwrap();
    // Insert a new account.
    w.enter_insert(win).unwrap();
    {
        let f = &mut w.window_mut(win).unwrap().form;
        f.set_text(0, "3");
        f.set_text(1, "carol");
        f.set_text(2, "500");
    }
    w.commit(win).unwrap();
    // Delete bob (cursor may have moved; find bob).
    while w.current_row(win).unwrap().unwrap().values[1] != Value::text("bob") {
        assert!(w.browse_next(win).unwrap());
    }
    w.delete_current(win).unwrap();
    let n = w.db_mut().run("RETRIEVE (n = COUNT(a.id))").unwrap();
    assert_eq!(n.tuples[0].values[0], Value::Int(2), "alice + carol");
    let undone = w.abort_batch(s).unwrap();
    assert_eq!(undone, 2);
    let rows = w
        .db_mut()
        .run("RETRIEVE (a.owner) SORT BY a.owner")
        .unwrap();
    let owners: Vec<String> = rows
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect();
    assert_eq!(owners, vec!["alice", "bob"], "carol gone, bob restored");
}

#[test]
fn batch_misuse_errors() {
    let mut w = world();
    let s = w.open_session();
    assert!(w.commit_batch(s).is_err());
    assert!(w.abort_batch(s).is_err());
    w.begin_batch(s).unwrap();
    assert!(w.begin_batch(s).is_err());
    w.commit_batch(s).unwrap();
    // Empty batch aborts fine too.
    w.begin_batch(s).unwrap();
    assert_eq!(w.abort_batch(s).unwrap(), 0);
}

#[test]
fn two_batches_conflict_then_serialize() {
    let mut w = world();
    let s1 = w.open_session();
    let s2 = w.open_session();
    let w1 = w.open_window(s1, "accts", None).unwrap();
    let w2 = w.open_window(s2, "accts", None).unwrap();
    w.begin_batch(s1).unwrap();
    w.enter_edit(w1).unwrap();
    w.window_mut(w1).unwrap().form.set_text(2, "111");
    w.commit(w1).unwrap();
    // Session 2's edit is denied while the batch holds the table.
    w.begin_batch(s2).unwrap();
    w.enter_edit(w2).unwrap();
    w.window_mut(w2).unwrap().form.set_text(2, "222");
    let err = w.commit(w2).unwrap_err();
    assert!(err.to_string().contains("locked by session"));
    w.cancel_mode(w2).unwrap();
    // Batch 1 commits; batch 2 retries and succeeds.
    w.commit_batch(s1).unwrap();
    w.refresh_window(w2).unwrap();
    w.enter_edit(w2).unwrap();
    w.window_mut(w2).unwrap().form.set_text(2, "222");
    w.commit(w2).unwrap();
    w.commit_batch(s2).unwrap();
    assert_eq!(balance(&mut w, 1), 222);
}
