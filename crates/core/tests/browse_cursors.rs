//! Browse-cursor behaviour under the microscope: paging, filtering,
//! refresh under concurrent mutation, and strategy equivalence.

use wow_core::browse::BrowseCursor;
use wow_core::config::WorldConfig;
use wow_core::world::World;
use wow_rel::expr::{BinOp, Expr};
use wow_rel::quel::ast::SortKey;
use wow_rel::value::Value;
use wow_views::expand::ViewQuery;
use wow_views::updatable::{analyze, Updatability};
use wow_views::ViewCatalog;

fn world(n: usize) -> (World, Updatability) {
    let mut w = World::new(WorldConfig::default());
    w.db_mut()
        .run("CREATE TABLE item (k INT KEY, grp INT, label TEXT) RANGE OF i IS item")
        .unwrap();
    for k in 0..n {
        w.db_mut()
            .insert(
                "item",
                vec![
                    Value::Int(k as i64),
                    Value::Int((k % 5) as i64),
                    Value::text(format!("item-{k:05}")),
                ],
            )
            .unwrap();
    }
    w.define_view("items", "RANGE OF i IS item RETRIEVE (i.k, i.grp, i.label)")
        .unwrap();
    let upd = analyze(w.db(), w.views(), "items").unwrap();
    (w, upd)
}

fn drain_keys(cursor: &mut BrowseCursor, w: &mut World) -> Vec<i64> {
    let vc = ViewCatalog::new();
    let mut out = Vec::new();
    loop {
        match cursor.current_row() {
            Some((_, t)) => match t.values[0] {
                Value::Int(k) => out.push(k),
                _ => panic!(),
            },
            None => break,
        }
        if !cursor.next(w.db_mut(), &vc).unwrap() {
            break;
        }
    }
    out
}

#[test]
fn indexed_cursor_walks_every_row_in_key_order() {
    let (mut w, upd) = world(100);
    let mut c = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 7, None).unwrap();
    let keys = drain_keys(&mut c, &mut w);
    assert_eq!(keys, (0..100).collect::<Vec<i64>>());
}

#[test]
fn indexed_and_materialized_agree() {
    let (mut w, upd) = world(64);
    let mut ix = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 10, None).unwrap();
    let ix_keys = drain_keys(&mut ix, &mut w);
    let q = ViewQuery {
        sort: vec![SortKey {
            column: "k".into(),
            ascending: true,
        }],
        ..Default::default()
    };
    let mut mat =
        BrowseCursor::materialized(w.db_mut(), &ViewCatalog::new(), "items", q, Some(&upd))
            .unwrap();
    let mat_keys = drain_keys(&mut mat, &mut w);
    assert_eq!(ix_keys, mat_keys);
}

#[test]
fn filtered_indexed_cursor_skips_non_matching_pages() {
    let (mut w, upd) = world(100);
    // grp = 3 matches exactly every 5th row.
    let pred = Expr::Binary {
        op: BinOp::Eq,
        left: Box::new(Expr::ColumnRef("grp".into())),
        right: Box::new(Expr::Literal(Value::Int(3))),
    };
    let mut c = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 6, Some(pred)).unwrap();
    let keys = drain_keys(&mut c, &mut w);
    assert_eq!(keys.len(), 20);
    assert!(keys.iter().all(|k| k % 5 == 3));
    // Still in ascending order despite page-crossing filtering.
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
}

#[test]
fn paging_forward_and_back_is_symmetric() {
    let (mut w, upd) = world(90);
    let vc = ViewCatalog::new();
    let mut c = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 10, None).unwrap();
    let first = c.current_row().unwrap().1.values[0].clone();
    for _ in 0..5 {
        assert!(c.next_page(w.db_mut(), &vc).unwrap());
    }
    let deep = c.current_row().unwrap().1.values[0].clone();
    assert_eq!(deep, Value::Int(50));
    for _ in 0..5 {
        assert!(c.prev_page(w.db_mut(), &vc).unwrap());
    }
    assert_eq!(c.current_row().unwrap().1.values[0], first);
    assert!(!c.prev_page(w.db_mut(), &vc).unwrap(), "at the very start");
}

#[test]
fn next_page_stops_cleanly_at_the_end() {
    let (mut w, upd) = world(25);
    let vc = ViewCatalog::new();
    let mut c = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 10, None).unwrap();
    assert!(c.next_page(w.db_mut(), &vc).unwrap());
    assert!(c.next_page(w.db_mut(), &vc).unwrap());
    // Third page exists (5 rows); fourth does not.
    assert!(!c.next_page(w.db_mut(), &vc).unwrap());
    // The cursor still points at a real row afterwards.
    assert!(c.current_row().is_some());
}

#[test]
fn refresh_survives_concurrent_deletes() {
    let (mut w, upd) = world(40);
    let vc = ViewCatalog::new();
    let mut c = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 10, None).unwrap();
    c.next_page(w.db_mut(), &vc).unwrap(); // rows 10..20
    assert_eq!(c.current_row().unwrap().1.values[0], Value::Int(10));
    // Another window deletes the row under the cursor and its neighbour.
    for key in [10i64, 11] {
        let rid = w
            .db_mut()
            .index_lookup("pk_item", &[Value::Int(key)])
            .unwrap()[0];
        w.db_mut().delete_rid("item", rid).unwrap();
    }
    c.refresh(w.db_mut(), &vc).unwrap();
    // The page refilled from the same start key; first visible row is 12.
    assert_eq!(c.current_row().unwrap().1.values[0], Value::Int(12));
}

#[test]
fn refresh_survives_concurrent_inserts() {
    let (mut w, upd) = world(20);
    let vc = ViewCatalog::new();
    let mut c = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 10, None).unwrap();
    c.next(w.db_mut(), &vc).unwrap();
    c.next(w.db_mut(), &vc).unwrap(); // on row 2
                                      // Insert a row *before* the cursor.
    w.db_mut()
        .insert(
            "item",
            vec![Value::Int(-1), Value::Int(0), Value::text("early")],
        )
        .unwrap();
    c.refresh(w.db_mut(), &vc).unwrap();
    // Position is by page slot, so the new first-page content shifts; the
    // cursor still points at a valid row and ordering holds.
    let keys = drain_keys(&mut c, &mut w);
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
}

#[test]
fn empty_view_cursor_is_well_behaved() {
    let (mut w, upd) = world(0);
    let vc = ViewCatalog::new();
    let mut c = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 10, None).unwrap();
    assert!(c.is_empty());
    assert!(c.current_row().is_none());
    assert_eq!(c.position(), None);
    assert!(!c.next(w.db_mut(), &vc).unwrap());
    assert!(!c.prev(w.db_mut(), &vc).unwrap());
    assert!(!c.next_page(w.db_mut(), &vc).unwrap());
    assert!(!c.prev_page(w.db_mut(), &vc).unwrap());
    c.refresh(w.db_mut(), &vc).unwrap();
    assert!(c.is_empty());
}

#[test]
fn materialized_cursor_for_read_only_views() {
    let mut w = World::new(WorldConfig::default());
    w.db_mut()
        .run("CREATE TABLE a (k INT KEY, v INT) CREATE TABLE b (k INT KEY, v INT)")
        .unwrap();
    for k in 0..10 {
        w.db_mut()
            .insert("a", vec![Value::Int(k), Value::Int(k * 2)])
            .unwrap();
        w.db_mut()
            .insert("b", vec![Value::Int(k), Value::Int(k * 3)])
            .unwrap();
    }
    w.define_view(
        "ab",
        "RANGE OF x IS a RANGE OF y IS b RETRIEVE (x.k, av = x.v, bv = y.v) WHERE x.k = y.k",
    )
    .unwrap();
    let vc = {
        let mut vc = ViewCatalog::new();
        vc.register(w.views().get("ab").unwrap().clone()).unwrap();
        vc
    };
    let mut c = BrowseCursor::materialized(
        w.db_mut(),
        &vc,
        "ab",
        ViewQuery {
            sort: vec![SortKey {
                column: "k".into(),
                ascending: true,
            }],
            ..Default::default()
        },
        None,
    )
    .unwrap();
    assert_eq!(c.known_len(), Some(10));
    let (rid, row) = c.current_row().unwrap();
    assert!(rid.is_none(), "join views carry no base rid");
    assert_eq!(
        row.values,
        vec![Value::Int(0), Value::Int(0), Value::Int(0)]
    );
    // Refresh picks up base-table changes.
    w.db_mut()
        .run("RANGE OF x IS a REPLACE x (v = 100) WHERE x.k = 0")
        .unwrap();
    c.refresh(w.db_mut(), &vc).unwrap();
    assert_eq!(c.current_row().unwrap().1.values[1], Value::Int(100));
}

#[test]
fn streamed_cursor_pages_join_views_incrementally() {
    let mut w = World::new(WorldConfig::default());
    w.db_mut()
        .run("CREATE TABLE a (k INT KEY, v INT) CREATE TABLE b (k INT KEY, v INT)")
        .unwrap();
    for k in 0..23 {
        w.db_mut()
            .insert("a", vec![Value::Int(k), Value::Int(k * 2)])
            .unwrap();
        w.db_mut()
            .insert("b", vec![Value::Int(k), Value::Int(k * 3)])
            .unwrap();
    }
    w.define_view(
        "ab",
        "RANGE OF x IS a RANGE OF y IS b RETRIEVE (x.k, av = x.v, bv = y.v) WHERE x.k = y.k",
    )
    .unwrap();
    let vc = {
        let mut vc = ViewCatalog::new();
        vc.register(w.views().get("ab").unwrap().clone()).unwrap();
        vc
    };
    // Drain with the real catalog: streamed pages re-run the view query.
    let drain = |cursor: &mut BrowseCursor, w: &mut World| {
        let mut out = Vec::new();
        loop {
            match cursor.current_row() {
                Some((_, t)) => match t.values[0] {
                    Value::Int(k) => out.push(k),
                    _ => panic!(),
                },
                None => break,
            }
            if !cursor.next(w.db_mut(), &vc).unwrap() {
                break;
            }
        }
        out
    };
    let mut st = BrowseCursor::streamed(w.db_mut(), &vc, "ab", ViewQuery::default(), 5).unwrap();
    assert_eq!(st.known_len(), None, "never materializes the extension");
    assert_eq!(st.position(), Some(0));
    let streamed_keys = drain(&mut st, &mut w);
    let mut mat =
        BrowseCursor::materialized(w.db_mut(), &vc, "ab", ViewQuery::default(), None).unwrap();
    let mat_keys = drain(&mut mat, &mut w);
    assert_eq!(streamed_keys, mat_keys, "strategies agree on join views");
    assert_eq!(streamed_keys.len(), 23);
    // Paging forward and back is symmetric.
    let mut st = BrowseCursor::streamed(w.db_mut(), &vc, "ab", ViewQuery::default(), 5).unwrap();
    let first = st.current_row().unwrap().1.values[0].clone();
    assert!(st.next_page(w.db_mut(), &vc).unwrap());
    assert!(st.next_page(w.db_mut(), &vc).unwrap());
    assert_eq!(st.position(), Some(10));
    assert!(st.prev_page(w.db_mut(), &vc).unwrap());
    assert!(st.prev_page(w.db_mut(), &vc).unwrap());
    assert_eq!(st.current_row().unwrap().1.values[0], first);
    assert!(!st.prev_page(w.db_mut(), &vc).unwrap(), "at the start");
    // The last (short) page is reached cleanly and the end detected.
    for _ in 0..4 {
        st.next_page(w.db_mut(), &vc).unwrap();
    }
    assert!(!st.next_page(w.db_mut(), &vc).unwrap());
    assert!(st.current_row().is_some());
    // Refresh sees base-table writes.
    w.db_mut()
        .run("RANGE OF x IS a REPLACE x (v = 100) WHERE x.k = 20")
        .unwrap();
    st.refresh(w.db_mut(), &vc).unwrap();
    let page: Vec<i64> = st
        .page_rows()
        .iter()
        .map(|(_, t)| match t.values[0] {
            Value::Int(k) => k,
            _ => panic!(),
        })
        .collect();
    assert!(page.contains(&20));
}

#[test]
fn position_reporting_counts_matches_only() {
    let (mut w, upd) = world(50);
    let vc = ViewCatalog::new();
    let pred = Expr::Binary {
        op: BinOp::Eq,
        left: Box::new(Expr::ColumnRef("grp".into())),
        right: Box::new(Expr::Literal(Value::Int(0))),
    };
    let mut c = BrowseCursor::indexed(w.db_mut(), &upd, "pk_item", 4, Some(pred)).unwrap();
    assert_eq!(c.position(), Some(0));
    // Walk 6 matching rows; position counts matches, not base rows.
    for _ in 0..6 {
        assert!(c.next(w.db_mut(), &vc).unwrap());
    }
    assert_eq!(c.position(), Some(6));
}
