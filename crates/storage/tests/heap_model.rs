//! Model-based testing of heap files (rid → bytes map semantics) and
//! failure injection through a faulty page store.

use proptest::prelude::*;
use std::collections::HashMap;
use wow_storage::buffer::BufferPool;
use wow_storage::heap::HeapFile;
use wow_storage::page::{Page, PageId};
use wow_storage::store::{MemStore, PageStore};
use wow_storage::{Rid, StorageError, StorageResult};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
    Get(usize),
    ScanAll,
}

fn record_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Mix small records with page-straining ones to force splits/moves.
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(any::<u8>(), 1000..4000),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => record_strategy().prop_map(Op::Insert),
        3 => (any::<usize>(), record_strategy()).prop_map(|(i, r)| Op::Update(i, r)),
        2 => any::<usize>().prop_map(Op::Delete),
        2 => any::<usize>().prop_map(Op::Get),
        1 => Just(Op::ScanAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]
    #[test]
    fn heap_behaves_like_a_rid_keyed_map(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let pool = BufferPool::new(MemStore::new(), 16);
        let mut heap = HeapFile::create(&pool).unwrap();
        let mut model: HashMap<Rid, Vec<u8>> = HashMap::new();
        let mut rids: Vec<Rid> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(rec) => {
                    let rid = heap.insert(&pool, &rec).unwrap();
                    prop_assert!(!model.contains_key(&rid), "rid reuse while live");
                    model.insert(rid, rec);
                    rids.push(rid);
                }
                Op::Update(i, rec) => {
                    if rids.is_empty() { continue; }
                    let rid = rids[i % rids.len()];
                    let updated = heap.update(&pool, rid, &rec).unwrap();
                    prop_assert_eq!(updated, model.contains_key(&rid));
                    if updated {
                        model.insert(rid, rec);
                    }
                }
                Op::Delete(i) => {
                    if rids.is_empty() { continue; }
                    let rid = rids[i % rids.len()];
                    let deleted = heap.delete(&pool, rid).unwrap();
                    prop_assert_eq!(deleted, model.remove(&rid).is_some());
                }
                Op::Get(i) => {
                    if rids.is_empty() { continue; }
                    let rid = rids[i % rids.len()];
                    let got = heap.get(&pool, rid).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&rid));
                }
                Op::ScanAll => {
                    let mut seen: HashMap<Rid, Vec<u8>> = HashMap::new();
                    heap.scan(&pool, |rid, rec| {
                        seen.insert(rid, rec.to_vec());
                    })
                    .unwrap();
                    prop_assert_eq!(&seen, &model, "scan = model contents");
                }
            }
            prop_assert_eq!(heap.len() as usize, model.len());
        }
        // Final full check after the op stream.
        let all = heap.scan_all(&pool).unwrap();
        prop_assert_eq!(all.len(), model.len());
        for (rid, rec) in all {
            prop_assert_eq!(Some(&rec), model.get(&rid));
        }
    }
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

/// A page store that starts failing every write after a fuse burns.
struct FaultyStore {
    inner: MemStore,
    writes_left: usize,
}

impl PageStore for FaultyStore {
    fn allocate(&mut self) -> StorageResult<PageId> {
        self.inner.allocate()
    }
    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        self.inner.read(id, out)
    }
    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        if self.writes_left == 0 {
            return Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::Other,
                "injected disk failure",
            )));
        }
        self.writes_left -= 1;
        self.inner.write(id, page)
    }
    fn free(&mut self, id: PageId) -> StorageResult<()> {
        self.inner.free(id)
    }
    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }
    fn sync(&mut self) -> StorageResult<()> {
        self.inner.sync()
    }
}

#[test]
fn disk_failures_surface_as_errors_not_panics() {
    // A tiny pool forces evictions (and hence store writes) quickly.
    let store = FaultyStore {
        inner: MemStore::new(),
        writes_left: 6,
    };
    let pool = BufferPool::new(store, 2);
    let mut heap = HeapFile::create(&pool).unwrap();
    let rec = vec![7u8; 2000];
    let mut saw_error = false;
    for _ in 0..200 {
        match heap.insert(&pool, &rec) {
            Ok(_) => {}
            Err(StorageError::Io(e)) => {
                assert!(e.to_string().contains("injected"));
                saw_error = true;
                break;
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
    assert!(saw_error, "the fuse must eventually blow through the pool");
}

#[test]
fn flush_failures_are_reported() {
    let store = FaultyStore {
        inner: MemStore::new(),
        writes_left: 0,
    };
    let pool = BufferPool::new(store, 8);
    let id = pool.allocate_page().unwrap();
    pool.with_page_mut(id, |p| p.as_mut_slice()[0] = 1).unwrap();
    assert!(matches!(pool.flush_all(), Err(StorageError::Io(_))));
}
