//! Crash-consistency property: **any byte-prefix of a valid WAL file
//! recovers exactly the committed prefix**.
//!
//! A crash can leave the log cut at any byte — mid-frame, mid-header,
//! even length zero. Whatever the cut, reopening must (a) never error,
//! (b) yield exactly the records whose frames fully fit below the cut,
//! in order, and (c) report as committed exactly the transactions whose
//! `Commit` record fully fits. The expected answer is computed from the
//! frame boundaries recorded while the log was written, so the test is
//! an exact spec, not a weaker "some prefix" check.

use proptest::prelude::*;
use std::fs::OpenOptions;
use std::path::PathBuf;
use wow_storage::recovery::analyze;
use wow_storage::wal::{LogRecord, Wal};
use wow_storage::{PageId, Rid};

/// Bytes before the first frame: magic + version + epoch.
const WAL_HEADER: u64 = 16;

fn tmp_path(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wow-wal-prefix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("log-{tag}.wal"))
}

/// One transaction's script: how many data ops it logs, and how it ends.
#[derive(Debug, Clone, Copy)]
enum Ending {
    Commit,
    Abort,
    /// Crash arrived first; no terminator record.
    InFlight,
}

fn txn_records(txn: u64, ops: u8, ending: Ending) -> Vec<LogRecord> {
    let mut out = vec![LogRecord::Begin { txn }];
    for i in 0..ops {
        let rid = Rid::new(PageId(txn), i as u16);
        // Cycle through the op kinds so every record shape (and size)
        // appears in the stream; payload length varies with `i`.
        out.push(match i % 3 {
            0 => LogRecord::Insert {
                txn,
                table: txn as u32,
                rid,
                bytes: vec![i; 1 + i as usize * 7],
            },
            1 => LogRecord::Update {
                txn,
                table: txn as u32,
                rid,
                old: vec![0xAA; 3 + i as usize],
                new: vec![0xBB; 5 + i as usize * 11],
            },
            _ => LogRecord::Delete {
                txn,
                table: txn as u32,
                rid,
                old: vec![0xCC; 2 + i as usize * 5],
            },
        });
    }
    match ending {
        Ending::Commit => out.push(LogRecord::Commit { txn }),
        Ending::Abort => out.push(LogRecord::Abort { txn }),
        Ending::InFlight => {}
    }
    out
}

fn ending_strategy() -> impl Strategy<Value = Ending> {
    prop_oneof![
        5 => Just(Ending::Commit),
        2 => Just(Ending::Abort),
        2 => Just(Ending::InFlight),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn any_byte_prefix_recovers_the_committed_prefix(
        scripts in proptest::collection::vec((0u8..5, ending_strategy()), 1..8),
        cut_seed in any::<u64>(),
        tag in any::<u64>(),
    ) {
        // Build the full record stream and, by appending one record at a
        // time, the byte offset at which each record's frame ends.
        let mut records = Vec::new();
        for (i, (ops, ending)) in scripts.iter().enumerate() {
            records.extend(txn_records(i as u64 + 1, *ops, *ending));
        }
        let mut mem = Wal::in_memory();
        let mut ends: Vec<u64> = Vec::with_capacity(records.len());
        for r in &records {
            mem.append(r).unwrap();
            ends.push(WAL_HEADER + mem.raw().unwrap().len() as u64);
        }
        let full_len = *ends.last().unwrap();

        let path = tmp_path(tag);
        Wal::write_image(&path, 3, mem.raw().unwrap()).unwrap();

        // Cut the file at several pseudo-random byte lengths plus the
        // interesting fixed points (empty, torn header, every frame
        // boundary and one byte before it).
        let mut cuts: Vec<u64> = vec![0, 1, WAL_HEADER - 1, WAL_HEADER, full_len];
        for e in &ends {
            cuts.push(*e);
            cuts.push(e - 1);
        }
        let mut x = cut_seed;
        for _ in 0..8 {
            // SplitMix64 step, inlined: the cut schedule derives from the
            // proptest input so every run is reproducible.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            cuts.push((z ^ (z >> 31)) % (full_len + 1));
        }

        for cut in cuts {
            // Restore the full image, then tear it at `cut` bytes.
            Wal::write_image(&path, 3, mem.raw().unwrap()).unwrap();
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);

            // (a) Reopening a torn log must never error.
            let mut wal = Wal::open(&path).unwrap();
            let got: Vec<LogRecord> =
                wal.read_all().unwrap().into_iter().map(|(_, r)| r).collect();

            // (b) Exactly the records whose frames fully fit survive.
            let survivors = ends.iter().filter(|e| **e <= cut).count();
            prop_assert_eq!(
                got.len(), survivors,
                "cut at {} of {}: {} records survived, expected {}",
                cut, full_len, got.len(), survivors
            );
            prop_assert_eq!(&got[..], &records[..survivors]);

            // (c) Committed = transactions whose Commit fit below the cut.
            let report = analyze(&got);
            let expected: Vec<u64> = records[..survivors]
                .iter()
                .filter_map(|r| match r {
                    LogRecord::Commit { txn } => Some(*txn),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(report.committed, expected);

            // A torn header (< 16 bytes) reinitializes to epoch 0; an
            // intact one keeps the stamped epoch.
            let expect_epoch = if cut < WAL_HEADER { 0 } else { 3 };
            prop_assert_eq!(wal.epoch(), expect_epoch);
        }
        std::fs::remove_file(&path).ok();
    }
}
