//! Error type shared by all storage-layer modules.

use std::fmt;

/// Result alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors surfaced by the storage engine.
///
/// Storage errors are deliberately coarse: callers one layer up (the
/// relational engine) either propagate them or treat them as fatal for the
/// current statement. The variants carry enough context to debug a failing
/// test without threading string formatting through hot paths.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O error from the underlying page store.
    Io(std::io::Error),
    /// A page id that was never allocated (or was freed) was referenced.
    PageNotFound(u64),
    /// A record id pointed at a slot that does not exist on its page.
    SlotNotFound { page: u64, slot: u16 },
    /// A record was too large to ever fit on a page.
    RecordTooLarge { size: usize, max: usize },
    /// The buffer pool had no evictable frame (every frame pinned).
    PoolExhausted { capacity: usize },
    /// A page's bytes failed a structural sanity check.
    Corrupt(&'static str),
    /// A unique index rejected a duplicate key.
    DuplicateKey,
    /// The write-ahead log contained an unreadable record.
    WalCorrupt { offset: u64, reason: &'static str },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::PageNotFound(p) => write!(f, "page {p} not found"),
            StorageError::SlotNotFound { page, slot } => {
                write!(f, "slot {slot} not found on page {page}")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds maximum {max}")
            }
            StorageError::PoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            StorageError::Corrupt(what) => write!(f, "corrupt page: {what}"),
            StorageError::DuplicateKey => write!(f, "duplicate key in unique index"),
            StorageError::WalCorrupt { offset, reason } => {
                write!(f, "corrupt WAL record at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            StorageError::PageNotFound(7).to_string(),
            "page 7 not found"
        );
        assert_eq!(
            StorageError::SlotNotFound { page: 3, slot: 9 }.to_string(),
            "slot 9 not found on page 3"
        );
        assert_eq!(
            StorageError::RecordTooLarge {
                size: 9000,
                max: 8000
            }
            .to_string(),
            "record of 9000 bytes exceeds maximum 8000"
        );
        assert_eq!(
            StorageError::PoolExhausted { capacity: 4 }.to_string(),
            "buffer pool exhausted: all 4 frames pinned"
        );
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::Other, "boom");
        let err: StorageError = io.into();
        assert!(err.to_string().contains("boom"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
