//! Write-ahead log.
//!
//! Every data-modifying statement appends logical records to the WAL before
//! touching heap pages; commit appends a commit record and flushes. After a
//! crash, [`crate::recovery`] replays the committed prefix.
//!
//! Record wire format (little-endian):
//!
//! ```text
//! 4 bytes  payload length
//! 8 bytes  FNV-1a checksum of the payload
//! n bytes  payload (bincode-free, hand-rolled tag + fields)
//! ```
//!
//! The log backend is either an in-memory buffer (benches, crash-simulation
//! tests) or an append-only file.

use crate::error::{StorageError, StorageResult};
use crate::rid::Rid;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Transaction identifier assigned by the session layer.
pub type TxnId = u64;
/// Identifier of a logged table (the relation's catalog id).
pub type TableId = u32;
/// Log sequence number: byte offset of the record in the log.
pub type Lsn = u64;

/// A logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start.
    Begin { txn: TxnId },
    /// A row was inserted.
    Insert {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        bytes: Vec<u8>,
    },
    /// A row was rewritten (old image kept for undo/audit).
    Update {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        old: Vec<u8>,
        new: Vec<u8>,
    },
    /// A row was deleted (old image kept).
    Delete {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        old: Vec<u8>,
    },
    /// Transaction committed; its effects must survive a crash.
    Commit { txn: TxnId },
    /// Transaction aborted; its effects must not be replayed.
    Abort { txn: TxnId },
}

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_ABORT: u8 = 6;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> StorageResult<u8> {
        let v = *self.buf.get(self.pos).ok_or(StorageError::WalCorrupt {
            offset: self.pos as u64,
            reason: "eof",
        })?;
        self.pos += 1;
        Ok(v)
    }
    fn u32(&mut self) -> StorageResult<u32> {
        let s = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(StorageError::WalCorrupt {
                offset: self.pos as u64,
                reason: "eof",
            })?;
        self.pos += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> StorageResult<u64> {
        let s = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(StorageError::WalCorrupt {
                offset: self.pos as u64,
                reason: "eof",
            })?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn rid(&mut self) -> StorageResult<Rid> {
        let s = self
            .buf
            .get(self.pos..self.pos + 10)
            .ok_or(StorageError::WalCorrupt {
                offset: self.pos as u64,
                reason: "eof",
            })?;
        self.pos += 10;
        Rid::from_bytes(s).ok_or(StorageError::WalCorrupt {
            offset: self.pos as u64,
            reason: "bad rid",
        })
    }
    fn bytes(&mut self) -> StorageResult<Vec<u8>> {
        let n = self.u32()? as usize;
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(StorageError::WalCorrupt {
                offset: self.pos as u64,
                reason: "eof",
            })?;
        self.pos += n;
        Ok(s.to_vec())
    }
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            LogRecord::Begin { txn } => {
                out.push(TAG_BEGIN);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Insert {
                txn,
                table,
                rid,
                bytes,
            } => {
                out.push(TAG_INSERT);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_bytes());
                put_bytes(&mut out, bytes);
            }
            LogRecord::Update {
                txn,
                table,
                rid,
                old,
                new,
            } => {
                out.push(TAG_UPDATE);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_bytes());
                put_bytes(&mut out, old);
                put_bytes(&mut out, new);
            }
            LogRecord::Delete {
                txn,
                table,
                rid,
                old,
            } => {
                out.push(TAG_DELETE);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_bytes());
                put_bytes(&mut out, old);
            }
            LogRecord::Commit { txn } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Abort { txn } => {
                out.push(TAG_ABORT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
        }
        out
    }

    fn decode(payload: &[u8], offset: u64) -> StorageResult<LogRecord> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let rec = match r.u8()? {
            TAG_BEGIN => LogRecord::Begin { txn: r.u64()? },
            TAG_INSERT => LogRecord::Insert {
                txn: r.u64()?,
                table: r.u32()?,
                rid: r.rid()?,
                bytes: r.bytes()?,
            },
            TAG_UPDATE => LogRecord::Update {
                txn: r.u64()?,
                table: r.u32()?,
                rid: r.rid()?,
                old: r.bytes()?,
                new: r.bytes()?,
            },
            TAG_DELETE => LogRecord::Delete {
                txn: r.u64()?,
                table: r.u32()?,
                rid: r.rid()?,
                old: r.bytes()?,
            },
            TAG_COMMIT => LogRecord::Commit { txn: r.u64()? },
            TAG_ABORT => LogRecord::Abort { txn: r.u64()? },
            _ => {
                return Err(StorageError::WalCorrupt {
                    offset,
                    reason: "unknown tag",
                })
            }
        };
        if r.pos != payload.len() {
            return Err(StorageError::WalCorrupt {
                offset,
                reason: "trailing bytes",
            });
        }
        Ok(rec)
    }

    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
        }
    }
}

enum Backend {
    Memory(Vec<u8>),
    File(File),
}

/// The write-ahead log.
pub struct Wal {
    backend: Backend,
    end: Lsn,
    appended: u64,
}

impl Wal {
    /// An in-memory log (used by benches and crash-simulation tests).
    pub fn in_memory() -> Wal {
        Wal {
            backend: Backend::Memory(Vec::new()),
            end: 0,
            appended: 0,
        }
    }

    /// Open (or create) a file-backed log.
    pub fn open(path: &Path) -> StorageResult<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let end = file.metadata()?.len();
        Ok(Wal {
            backend: Backend::File(file),
            end,
            appended: 0,
        })
    }

    /// Current end-of-log position.
    pub fn end_lsn(&self) -> Lsn {
        self.end
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Append a record, returning its LSN. The record is buffered; call
    /// [`Wal::flush`] (done by commit) to make it durable.
    pub fn append(&mut self, rec: &LogRecord) -> StorageResult<Lsn> {
        let mut span = wow_obs::span(wow_obs::Op::WalAppend);
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let lsn = self.end;
        match &mut self.backend {
            Backend::Memory(buf) => buf.extend_from_slice(&frame),
            Backend::File(f) => f.write_all(&frame)?,
        }
        self.end += frame.len() as u64;
        self.appended += 1;
        span.arg(frame.len() as u64);
        Ok(lsn)
    }

    /// Force the log to stable storage.
    pub fn flush(&mut self) -> StorageResult<()> {
        if let Backend::File(f) = &mut self.backend {
            f.sync_data()?;
        }
        Ok(())
    }

    /// Read back every record in order. A torn tail (incomplete final
    /// record, as after a crash mid-append) is tolerated and truncated; a
    /// checksum mismatch is an error.
    pub fn read_all(&mut self) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let buf: Vec<u8> = match &mut self.backend {
            Backend::Memory(b) => b.clone(),
            Backend::File(f) => {
                let mut b = Vec::new();
                f.seek(SeekFrom::Start(0))?;
                f.read_to_end(&mut b)?;
                b
            }
        };
        Self::parse(&buf)
    }

    /// Parse a raw log image (exposed for crash-simulation tests that
    /// truncate the image at arbitrary points).
    pub fn parse(buf: &[u8]) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 12 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
            if pos + 12 + len > buf.len() {
                break; // torn tail
            }
            let payload = &buf[pos + 12..pos + 12 + len];
            if fnv1a(payload) != sum {
                return Err(StorageError::WalCorrupt {
                    offset: pos as u64,
                    reason: "checksum mismatch",
                });
            }
            out.push((pos as Lsn, LogRecord::decode(payload, pos as u64)?));
            pos += 12 + len;
        }
        Ok(out)
    }

    /// The raw log image (memory backend only; for crash simulation).
    pub fn raw(&self) -> Option<&[u8]> {
        match &self.backend {
            Backend::Memory(b) => Some(b),
            Backend::File(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Insert {
                txn: 1,
                table: 7,
                rid: Rid::new(PageId(3), 4),
                bytes: b"row-bytes".to_vec(),
            },
            LogRecord::Update {
                txn: 1,
                table: 7,
                rid: Rid::new(PageId(3), 4),
                old: b"row-bytes".to_vec(),
                new: b"new-bytes".to_vec(),
            },
            LogRecord::Delete {
                txn: 1,
                table: 7,
                rid: Rid::new(PageId(3), 4),
                old: b"new-bytes".to_vec(),
            },
            LogRecord::Commit { txn: 1 },
            LogRecord::Abort { txn: 2 },
        ]
    }

    #[test]
    fn round_trip_memory() {
        let mut wal = Wal::in_memory();
        let recs = sample_records();
        for r in &recs {
            wal.append(r).unwrap();
        }
        let read: Vec<LogRecord> = wal
            .read_all()
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(read, recs);
        assert_eq!(wal.appended(), recs.len() as u64);
    }

    #[test]
    fn lsns_are_monotonic() {
        let mut wal = Wal::in_memory();
        let mut last = None;
        for r in sample_records() {
            let lsn = wal.append(&r).unwrap();
            if let Some(prev) = last {
                assert!(lsn > prev);
            }
            last = Some(lsn);
        }
    }

    #[test]
    fn torn_tail_is_truncated_not_error() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let raw = wal.raw().unwrap().to_vec();
        // Chop mid-record: parse must return only complete records.
        let cut = raw.len() - 3;
        let parsed = Wal::parse(&raw[..cut]).unwrap();
        assert_eq!(parsed.len(), sample_records().len() - 1);
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut wal = Wal::in_memory();
        wal.append(&LogRecord::Begin { txn: 9 }).unwrap();
        let mut raw = wal.raw().unwrap().to_vec();
        let n = raw.len();
        raw[n - 1] ^= 0xFF; // flip a payload byte
        assert!(matches!(
            Wal::parse(&raw),
            Err(StorageError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn file_backend_persists() {
        let dir = std::env::temp_dir().join(format!("wow-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.flush().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.read_all().unwrap().len(), sample_records().len());
            // Appending after reopen continues at the end.
            wal.append(&LogRecord::Begin { txn: 99 }).unwrap();
            assert_eq!(wal.read_all().unwrap().len(), sample_records().len() + 1);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_log_parses_empty() {
        let mut wal = Wal::in_memory();
        assert!(wal.read_all().unwrap().is_empty());
    }

    #[test]
    fn txn_accessor_covers_all_variants() {
        for r in sample_records() {
            let t = r.txn();
            assert!(t == 1 || t == 2);
        }
    }
}
