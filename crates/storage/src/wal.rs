//! Write-ahead log.
//!
//! Every data-modifying statement appends logical records to the WAL before
//! touching heap pages; commit appends a commit record and flushes. After a
//! crash, [`crate::recovery`] replays the committed prefix.
//!
//! Record wire format (little-endian):
//!
//! ```text
//! 4 bytes  payload length
//! 8 bytes  FNV-1a checksum of the payload
//! n bytes  payload (bincode-free, hand-rolled tag + fields)
//! ```
//!
//! A file-backed log starts with a 16-byte header (`"WOWL"` magic, format
//! version, **epoch**). The epoch pairs the log with the checkpoint snapshot
//! it extends: a checkpoint writes a snapshot stamped `epoch + 1` and then
//! resets the log to that epoch, so recovery can tell a fresh tail from a
//! stale pre-checkpoint log left behind by a crash between those two steps
//! (see `wow-rel`'s durable-open path and DESIGN.md §Durability).
//!
//! The log backend is an in-memory buffer (benches, crash-simulation tests),
//! an append-only file, or a deterministic fault-injecting log
//! ([`crate::fault::FaultLog`]) for crash-torture tests.

use crate::error::{StorageError, StorageResult};
use crate::fault::{FaultLog, FaultPlan, FaultStats};
use crate::rid::Rid;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Transaction identifier assigned by the session layer.
pub type TxnId = u64;
/// Identifier of a logged table (the relation's catalog id).
pub type TableId = u32;
/// Log sequence number: byte offset of the record in the log.
pub type Lsn = u64;

/// A logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start.
    Begin { txn: TxnId },
    /// A row was inserted.
    Insert {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        bytes: Vec<u8>,
    },
    /// A row was rewritten (old image kept for undo/audit).
    Update {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        old: Vec<u8>,
        new: Vec<u8>,
    },
    /// A row was deleted (old image kept).
    Delete {
        txn: TxnId,
        table: TableId,
        rid: Rid,
        old: Vec<u8>,
    },
    /// Transaction committed; its effects must survive a crash.
    Commit { txn: TxnId },
    /// Transaction aborted; its effects must not be replayed.
    Abort { txn: TxnId },
    /// A schema change (create/drop table/index). The payload is opaque to
    /// this crate; the relational layer encodes and replays it so the WAL
    /// protects DDL issued after the last checkpoint, not just data.
    Ddl { txn: TxnId, bytes: Vec<u8> },
}

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_ABORT: u8 = 6;
const TAG_DDL: u8 = 7;

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> StorageResult<u8> {
        let v = *self.buf.get(self.pos).ok_or(StorageError::WalCorrupt {
            offset: self.pos as u64,
            reason: "eof",
        })?;
        self.pos += 1;
        Ok(v)
    }
    fn u32(&mut self) -> StorageResult<u32> {
        let s = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(StorageError::WalCorrupt {
                offset: self.pos as u64,
                reason: "eof",
            })?;
        self.pos += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }
    fn u64(&mut self) -> StorageResult<u64> {
        let s = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(StorageError::WalCorrupt {
                offset: self.pos as u64,
                reason: "eof",
            })?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }
    fn rid(&mut self) -> StorageResult<Rid> {
        let s = self
            .buf
            .get(self.pos..self.pos + 10)
            .ok_or(StorageError::WalCorrupt {
                offset: self.pos as u64,
                reason: "eof",
            })?;
        self.pos += 10;
        Rid::from_bytes(s).ok_or(StorageError::WalCorrupt {
            offset: self.pos as u64,
            reason: "bad rid",
        })
    }
    fn bytes(&mut self) -> StorageResult<Vec<u8>> {
        let n = self.u32()? as usize;
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(StorageError::WalCorrupt {
                offset: self.pos as u64,
                reason: "eof",
            })?;
        self.pos += n;
        Ok(s.to_vec())
    }
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            LogRecord::Begin { txn } => {
                out.push(TAG_BEGIN);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Insert {
                txn,
                table,
                rid,
                bytes,
            } => {
                out.push(TAG_INSERT);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_bytes());
                put_bytes(&mut out, bytes);
            }
            LogRecord::Update {
                txn,
                table,
                rid,
                old,
                new,
            } => {
                out.push(TAG_UPDATE);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_bytes());
                put_bytes(&mut out, old);
                put_bytes(&mut out, new);
            }
            LogRecord::Delete {
                txn,
                table,
                rid,
                old,
            } => {
                out.push(TAG_DELETE);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&table.to_le_bytes());
                out.extend_from_slice(&rid.to_bytes());
                put_bytes(&mut out, old);
            }
            LogRecord::Commit { txn } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Abort { txn } => {
                out.push(TAG_ABORT);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Ddl { txn, bytes } => {
                out.push(TAG_DDL);
                out.extend_from_slice(&txn.to_le_bytes());
                put_bytes(&mut out, bytes);
            }
        }
        out
    }

    fn decode(payload: &[u8], offset: u64) -> StorageResult<LogRecord> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let rec = match r.u8()? {
            TAG_BEGIN => LogRecord::Begin { txn: r.u64()? },
            TAG_INSERT => LogRecord::Insert {
                txn: r.u64()?,
                table: r.u32()?,
                rid: r.rid()?,
                bytes: r.bytes()?,
            },
            TAG_UPDATE => LogRecord::Update {
                txn: r.u64()?,
                table: r.u32()?,
                rid: r.rid()?,
                old: r.bytes()?,
                new: r.bytes()?,
            },
            TAG_DELETE => LogRecord::Delete {
                txn: r.u64()?,
                table: r.u32()?,
                rid: r.rid()?,
                old: r.bytes()?,
            },
            TAG_COMMIT => LogRecord::Commit { txn: r.u64()? },
            TAG_ABORT => LogRecord::Abort { txn: r.u64()? },
            TAG_DDL => LogRecord::Ddl {
                txn: r.u64()?,
                bytes: r.bytes()?,
            },
            _ => {
                return Err(StorageError::WalCorrupt {
                    offset,
                    reason: "unknown tag",
                })
            }
        };
        if r.pos != payload.len() {
            return Err(StorageError::WalCorrupt {
                offset,
                reason: "trailing bytes",
            });
        }
        Ok(rec)
    }

    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::Ddl { txn, .. } => *txn,
        }
    }
}

/// When [`Wal::flush`] actually forces bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Every flush (i.e. every commit) fsyncs. Crash-safe; the default.
    #[default]
    Commit,
    /// Flushes are no-ops: writes reach the OS but are never forced. Fast,
    /// but a power loss can take back acknowledged commits — only for
    /// benches and workloads that can re-derive their data.
    Never,
}

impl SyncPolicy {
    /// Resolve the `WOW_FSYNC` environment override (`0`/`off`/`never` →
    /// [`SyncPolicy::Never`], `1`/`on`/`commit` → [`SyncPolicy::Commit`])
    /// over a configured default.
    pub fn resolve(default: SyncPolicy) -> SyncPolicy {
        match std::env::var("WOW_FSYNC") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "0" | "off" | "never" | "false" => SyncPolicy::Never,
                "1" | "on" | "commit" | "true" => SyncPolicy::Commit,
                _ => default,
            },
            Err(_) => default,
        }
    }
}

enum Backend {
    Memory(Vec<u8>),
    File(File),
    Fault(FaultLog),
}

/// Size of the file-backend header.
const WAL_HEADER: u64 = 16;
const WAL_MAGIC: u32 = 0x574F_574C; // "WOWL"
const WAL_VERSION: u32 = 1;

fn encode_wal_header(epoch: u64) -> [u8; WAL_HEADER as usize] {
    let mut h = [0u8; WAL_HEADER as usize];
    h[..4].copy_from_slice(&WAL_MAGIC.to_le_bytes());
    h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&epoch.to_le_bytes());
    h
}

/// The write-ahead log.
pub struct Wal {
    backend: Backend,
    end: Lsn,
    appended: u64,
    epoch: u64,
    flushes: u64,
    bytes_written: u64,
    sync_policy: SyncPolicy,
}

impl Wal {
    fn with_backend(backend: Backend, end: Lsn, epoch: u64) -> Wal {
        Wal {
            backend,
            end,
            appended: 0,
            epoch,
            flushes: 0,
            bytes_written: 0,
            sync_policy: SyncPolicy::default(),
        }
    }

    /// An in-memory log (used by benches and crash-simulation tests).
    pub fn in_memory() -> Wal {
        Self::with_backend(Backend::Memory(Vec::new()), 0, 0)
    }

    /// A log whose backend injects deterministic faults — see
    /// [`crate::fault::FaultLog`]. Starts at epoch 0; use [`Wal::reset`] to
    /// align it with a checkpoint's epoch.
    pub fn with_faults(plan: FaultPlan) -> Wal {
        Self::with_backend(Backend::Fault(FaultLog::new(plan)), 0, 0)
    }

    /// Open (or create) a file-backed log. A fresh (or torn-header) file is
    /// initialized to epoch 0; otherwise the header's epoch is loaded.
    pub fn open(path: &Path) -> StorageResult<Wal> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let len = file.metadata()?.len();
        let (end, epoch) = if len < WAL_HEADER {
            // Fresh file, or a crash tore the header write itself: nothing
            // after a partial header can be valid, so start over.
            file.set_len(0)?;
            file.write_all(&encode_wal_header(0))?;
            file.sync_data()?;
            (WAL_HEADER, 0)
        } else {
            let mut h = [0u8; WAL_HEADER as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut h)?;
            if u32::from_le_bytes(h[..4].try_into().unwrap()) != WAL_MAGIC {
                return Err(StorageError::WalCorrupt {
                    offset: 0,
                    reason: "bad wal magic",
                });
            }
            if u32::from_le_bytes(h[4..8].try_into().unwrap()) != WAL_VERSION {
                return Err(StorageError::WalCorrupt {
                    offset: 4,
                    reason: "unsupported wal version",
                });
            }
            (len, u64::from_le_bytes(h[8..16].try_into().unwrap()))
        };
        Ok(Self::with_backend(Backend::File(file), end, epoch))
    }

    /// Write a complete log image (header + frames) to `path` atomically
    /// enough for tests: used by the crash-torture harness to materialize a
    /// [`crate::fault::FaultLog::crash_image`] as a real on-disk log.
    pub fn write_image(path: &Path, epoch: u64, frames: &[u8]) -> StorageResult<()> {
        let mut out = Vec::with_capacity(frames.len() + WAL_HEADER as usize);
        out.extend_from_slice(&encode_wal_header(epoch));
        out.extend_from_slice(frames);
        std::fs::write(path, out)?;
        Ok(())
    }

    /// Current end-of-log position.
    pub fn end_lsn(&self) -> Lsn {
        self.end
    }

    /// Records appended through this handle.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Epoch of this log (pairs it with the checkpoint it extends).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Flush (fsync) calls that actually hit the backend.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Total framed bytes appended through this handle.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// This log's fsync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Set the fsync policy (see [`SyncPolicy`]).
    pub fn set_sync_policy(&mut self, policy: SyncPolicy) {
        self.sync_policy = policy;
    }

    /// Injected-fault counters, when the backend is fault-injecting.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match &self.backend {
            Backend::Fault(f) => Some(f.stats()),
            _ => None,
        }
    }

    /// Simulated power loss (fault backend only): the bytes that survive.
    pub fn crash_image(&mut self) -> Option<Vec<u8>> {
        match &mut self.backend {
            Backend::Fault(f) => Some(f.crash_image()),
            _ => None,
        }
    }

    /// Truncate the log and stamp a new epoch — the post-checkpoint reset.
    /// Administrative: never injects faults.
    pub fn reset(&mut self, epoch: u64) -> StorageResult<()> {
        match &mut self.backend {
            Backend::Memory(buf) => {
                buf.clear();
                self.end = 0;
            }
            Backend::File(f) => {
                f.set_len(0)?;
                f.write_all(&encode_wal_header(epoch))?;
                f.sync_data()?;
                self.end = WAL_HEADER;
            }
            Backend::Fault(f) => {
                f.clear();
                self.end = 0;
            }
        }
        self.epoch = epoch;
        Ok(())
    }

    /// Append a record, returning its LSN. The record is buffered; call
    /// [`Wal::flush`] (done by commit) to make it durable.
    pub fn append(&mut self, rec: &LogRecord) -> StorageResult<Lsn> {
        let mut span = wow_obs::span(wow_obs::Op::WalAppend);
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let lsn = self.end;
        match &mut self.backend {
            Backend::Memory(buf) => buf.extend_from_slice(&frame),
            Backend::File(f) => f.write_all(&frame)?,
            Backend::Fault(f) => f.append_frame(&frame)?,
        }
        self.end += frame.len() as u64;
        self.appended += 1;
        self.bytes_written += frame.len() as u64;
        span.arg(frame.len() as u64);
        Ok(lsn)
    }

    /// Force the log to stable storage (subject to the [`SyncPolicy`]).
    pub fn flush(&mut self) -> StorageResult<()> {
        if self.sync_policy == SyncPolicy::Never {
            return Ok(());
        }
        let mut span = wow_obs::span(wow_obs::Op::WalFsync);
        match &mut self.backend {
            Backend::Memory(_) => {}
            Backend::File(f) => f.sync_data()?,
            Backend::Fault(f) => f.flush()?,
        }
        self.flushes += 1;
        span.arg(self.flushes);
        Ok(())
    }

    /// Read back every record in order. A torn tail (incomplete final
    /// record, as after a crash mid-append) is tolerated and truncated; a
    /// checksum mismatch is an error.
    pub fn read_all(&mut self) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let buf: Vec<u8> = match &mut self.backend {
            Backend::Memory(b) => b.clone(),
            Backend::File(f) => {
                let mut b = Vec::new();
                f.seek(SeekFrom::Start(WAL_HEADER))?;
                f.read_to_end(&mut b)?;
                b
            }
            Backend::Fault(f) => f.visible(),
        };
        Self::parse(&buf)
    }

    /// Parse a raw log image (exposed for crash-simulation tests that
    /// truncate the image at arbitrary points).
    pub fn parse(buf: &[u8]) -> StorageResult<Vec<(Lsn, LogRecord)>> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 12 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
            if pos + 12 + len > buf.len() {
                break; // torn tail
            }
            let payload = &buf[pos + 12..pos + 12 + len];
            if fnv1a(payload) != sum {
                return Err(StorageError::WalCorrupt {
                    offset: pos as u64,
                    reason: "checksum mismatch",
                });
            }
            out.push((pos as Lsn, LogRecord::decode(payload, pos as u64)?));
            pos += 12 + len;
        }
        Ok(out)
    }

    /// The raw log image (memory backend only; for crash simulation).
    pub fn raw(&self) -> Option<&[u8]> {
        match &self.backend {
            Backend::Memory(b) => Some(b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::Insert {
                txn: 1,
                table: 7,
                rid: Rid::new(PageId(3), 4),
                bytes: b"row-bytes".to_vec(),
            },
            LogRecord::Update {
                txn: 1,
                table: 7,
                rid: Rid::new(PageId(3), 4),
                old: b"row-bytes".to_vec(),
                new: b"new-bytes".to_vec(),
            },
            LogRecord::Delete {
                txn: 1,
                table: 7,
                rid: Rid::new(PageId(3), 4),
                old: b"new-bytes".to_vec(),
            },
            LogRecord::Ddl {
                txn: 1,
                bytes: b"create table t".to_vec(),
            },
            LogRecord::Commit { txn: 1 },
            LogRecord::Abort { txn: 2 },
        ]
    }

    #[test]
    fn round_trip_memory() {
        let mut wal = Wal::in_memory();
        let recs = sample_records();
        for r in &recs {
            wal.append(r).unwrap();
        }
        let read: Vec<LogRecord> = wal
            .read_all()
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(read, recs);
        assert_eq!(wal.appended(), recs.len() as u64);
    }

    #[test]
    fn lsns_are_monotonic() {
        let mut wal = Wal::in_memory();
        let mut last = None;
        for r in sample_records() {
            let lsn = wal.append(&r).unwrap();
            if let Some(prev) = last {
                assert!(lsn > prev);
            }
            last = Some(lsn);
        }
    }

    #[test]
    fn torn_tail_is_truncated_not_error() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        let raw = wal.raw().unwrap().to_vec();
        // Chop mid-record: parse must return only complete records.
        let cut = raw.len() - 3;
        let parsed = Wal::parse(&raw[..cut]).unwrap();
        assert_eq!(parsed.len(), sample_records().len() - 1);
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut wal = Wal::in_memory();
        wal.append(&LogRecord::Begin { txn: 9 }).unwrap();
        let mut raw = wal.raw().unwrap().to_vec();
        let n = raw.len();
        raw[n - 1] ^= 0xFF; // flip a payload byte
        assert!(matches!(
            Wal::parse(&raw),
            Err(StorageError::WalCorrupt { .. })
        ));
    }

    #[test]
    fn file_backend_persists() {
        let dir = std::env::temp_dir().join(format!("wow-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            wal.flush().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.read_all().unwrap().len(), sample_records().len());
            // Appending after reopen continues at the end.
            wal.append(&LogRecord::Begin { txn: 99 }).unwrap();
            assert_eq!(wal.read_all().unwrap().len(), sample_records().len() + 1);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_log_parses_empty() {
        let mut wal = Wal::in_memory();
        assert!(wal.read_all().unwrap().is_empty());
    }

    #[test]
    fn epoch_survives_reopen_and_reset() {
        let dir = std::env::temp_dir().join(format!("wow-wal-epoch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.epoch(), 0);
            wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
            wal.reset(7).unwrap();
            assert_eq!(wal.epoch(), 7);
            assert!(wal.read_all().unwrap().is_empty(), "reset truncates");
            wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
            wal.flush().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert_eq!(wal.epoch(), 7, "epoch persisted in the header");
            assert_eq!(wal.read_all().unwrap().len(), 1);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_header_is_reinitialized() {
        let dir = std::env::temp_dir().join(format!("wow-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.wal");
        std::fs::write(&path, [0x4C; 5]).unwrap(); // 5 bytes: torn header
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.epoch(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_image_round_trips() {
        let dir = std::env::temp_dir().join(format!("wow-wal-img-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.wal");
        let mut mem = Wal::in_memory();
        for r in sample_records() {
            mem.append(&r).unwrap();
        }
        Wal::write_image(&path, 3, mem.raw().unwrap()).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.epoch(), 3);
        assert_eq!(wal.read_all().unwrap().len(), sample_records().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_policy_never_skips_fsync_counting() {
        let mut wal = Wal::with_faults(crate::fault::FaultPlan::quiet(5));
        wal.set_sync_policy(SyncPolicy::Never);
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.flushes(), 0, "Never policy skips the backend fsync");
        // The running process still sees the record (OS page cache view).
        assert_eq!(wal.read_all().unwrap().len(), 1);
        wal.set_sync_policy(SyncPolicy::Commit);
        wal.flush().unwrap();
        assert_eq!(wal.flushes(), 1);
        // Now it is durable: the crash image parses to the full record.
        let img = wal.crash_image().unwrap();
        assert_eq!(Wal::parse(&img).unwrap().len(), 1);
    }

    #[test]
    fn fault_backend_round_trips_and_counts() {
        let mut wal = Wal::with_faults(crate::fault::FaultPlan::quiet(9));
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        wal.flush().unwrap();
        assert_eq!(wal.read_all().unwrap().len(), sample_records().len());
        assert_eq!(
            wal.fault_stats().unwrap(),
            crate::fault::FaultStats::default()
        );
        let img = wal.crash_image().unwrap();
        assert_eq!(Wal::parse(&img).unwrap().len(), sample_records().len());
    }

    #[test]
    fn txn_accessor_covers_all_variants() {
        for r in sample_records() {
            let t = r.txn();
            assert!(t == 1 || t == 2);
        }
    }
}
