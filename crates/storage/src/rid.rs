//! Record identifiers.

use crate::page::PageId;
use std::fmt;

/// A record identifier: the physical address of a record in a heap file.
///
/// A `Rid` is stable for the lifetime of the record — updates that do not fit
/// in place are handled by the heap layer so that the rid observed by indexes
/// and windows never changes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page's slot directory.
    pub slot: u16,
}

impl Rid {
    /// Construct a rid.
    #[inline]
    pub fn new(page: PageId, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Sentinel rid (invalid page).
    pub const INVALID: Rid = Rid {
        page: PageId::INVALID,
        slot: 0,
    };

    /// Whether the rid refers to a real page.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.page.is_valid()
    }

    /// Serialize to a fixed 10-byte big-endian form that sorts identically to
    /// `(page, slot)` order. Used as an index-key tiebreaker.
    pub fn to_bytes(self) -> [u8; 10] {
        let mut out = [0u8; 10];
        out[..8].copy_from_slice(&self.page.0.to_be_bytes());
        out[8..].copy_from_slice(&self.slot.to_be_bytes());
        out
    }

    /// Inverse of [`Rid::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Rid> {
        if bytes.len() != 10 {
            return None;
        }
        let mut p = [0u8; 8];
        p.copy_from_slice(&bytes[..8]);
        let mut s = [0u8; 2];
        s.copy_from_slice(&bytes[8..]);
        Some(Rid {
            page: PageId(u64::from_be_bytes(p)),
            slot: u16::from_be_bytes(s),
        })
    }
}

impl fmt::Debug for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rid({}, {})", self.page.0, self.slot)
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let r = Rid::new(PageId(123_456_789), 42);
        assert_eq!(Rid::from_bytes(&r.to_bytes()), Some(r));
    }

    #[test]
    fn byte_encoding_preserves_order() {
        let a = Rid::new(PageId(1), 5);
        let b = Rid::new(PageId(1), 6);
        let c = Rid::new(PageId(2), 0);
        assert!(a.to_bytes() < b.to_bytes());
        assert!(b.to_bytes() < c.to_bytes());
    }

    #[test]
    fn from_bytes_rejects_bad_length() {
        assert_eq!(Rid::from_bytes(&[0u8; 9]), None);
        assert_eq!(Rid::from_bytes(&[0u8; 11]), None);
    }

    #[test]
    fn invalid_sentinel() {
        assert!(!Rid::INVALID.is_valid());
        assert!(Rid::new(PageId(0), 0).is_valid());
    }
}
