//! A pinning buffer pool with clock (second-chance) eviction, sharded for
//! parallel scans.
//!
//! All page access from the heap/index layers goes through the pool, which
//! caches hot pages in fixed-capacity frames over any [`PageStore`]. Access
//! is closure-scoped — [`BufferPool::with_page`] / [`BufferPool::with_page_mut`]
//! pin the frame for the duration of the closure, which makes pin leaks
//! impossible by construction.
//!
//! Bookkeeping (frame table, residency map, clock hand, statistics) is
//! sharded N-way by page id so concurrent scan partitions do not serialize
//! on a single LRU structure: every method takes `&self` and locks only
//! the one shard the page hashes to (plus the store for actual I/O).
//! Small pools get a single shard, which makes them behave bit-for-bit
//! like the pre-sharding serial pool. [`PoolStats`] are kept per shard and
//! aggregated on read.
//!
//! Lock order is strictly *shard → store*; no path ever holds two shard
//! locks or acquires a shard lock while holding the store lock, so the
//! pool is deadlock-free as long as `with_page` closures do not re-enter
//! the pool (the same discipline the previous `&mut self` API enforced
//! statically).

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};
use crate::store::PageStore;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Frames per shard the pool aims for when choosing its shard count; pools
/// smaller than `2 × FRAMES_PER_SHARD` stay single-sharded (exact serial
/// behavior for the tiny pools unit tests use).
const FRAMES_PER_SHARD: usize = 8;

/// Upper bound on the number of shards.
const MAX_SHARDS: usize = 16;

struct Frame {
    id: PageId,
    page: Page,
    dirty: bool,
    pins: u32,
    referenced: bool,
    /// Loaded by [`BufferPool::prefetch`] and not yet touched by a real
    /// page request.
    prefetched: bool,
}

/// Cache statistics, readable at any time (used by benches to demonstrate
/// locality of browse cursors).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read from the store.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back.
    pub writebacks: u64,
    /// Pages loaded ahead of demand by [`BufferPool::prefetch`].
    pub prefetches: u64,
    /// Page requests whose frame was resident because of a prefetch.
    pub prefetch_hits: u64,
}

impl PoolStats {
    /// Copy out the current values — pair with [`PoolStats::since`] to
    /// measure a warm phase without zeroing the pool's lifetime counters.
    pub fn snapshot(&self) -> PoolStats {
        *self
    }

    /// The activity accumulated since an earlier snapshot (field-wise
    /// saturating difference).
    pub fn since(&self, base: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            evictions: self.evictions.saturating_sub(base.evictions),
            writebacks: self.writebacks.saturating_sub(base.writebacks),
            prefetches: self.prefetches.saturating_sub(base.prefetches),
            prefetch_hits: self.prefetch_hits.saturating_sub(base.prefetch_hits),
        }
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        *self = PoolStats::default();
    }

    fn add(&mut self, other: &PoolStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.prefetches += other.prefetches;
        self.prefetch_hits += other.prefetch_hits;
    }
}

/// One shard of pool bookkeeping: an independent frame table with its own
/// residency map, clock hand, and statistics.
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    clock: usize,
    capacity: usize,
    stats: PoolStats,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            clock: 0,
            capacity,
            stats: PoolStats::default(),
        }
    }

    /// Locate (or fault in) the frame for `id`, returning its index with one
    /// pin taken. `load` controls whether a miss reads the store (false for
    /// fresh allocations whose content is known-zero).
    fn frame_for<S: PageStore>(
        &mut self,
        store: &Mutex<S>,
        id: PageId,
        load: bool,
    ) -> StorageResult<usize> {
        if let Some(&idx) = self.map.get(&id) {
            self.stats.hits += 1;
            self.frames[idx].pins += 1;
            if self.frames[idx].prefetched {
                // First demand touch of a readahead page: credit the
                // prefetch, but leave the reference bit clear so one-pass
                // scans stay evictable (see [`BufferPool::prefetch`]).
                self.stats.prefetch_hits += 1;
                self.frames[idx].prefetched = false;
            } else {
                self.frames[idx].referenced = true;
            }
            return Ok(idx);
        }
        self.stats.misses += 1;
        let idx = self.victim()?;
        self.load_into(store, idx, id, load)?;
        self.frames[idx].pins = 1;
        self.frames[idx].referenced = true;
        Ok(idx)
    }

    /// Evict whatever occupies frame `idx` (writing back if dirty) and load
    /// page `id` into it, unpinned and unreferenced. `load` as in
    /// [`Shard::frame_for`].
    fn load_into<S: PageStore>(
        &mut self,
        store: &Mutex<S>,
        idx: usize,
        id: PageId,
        load: bool,
    ) -> StorageResult<()> {
        if self.frames[idx].id.is_valid() {
            self.map.remove(&self.frames[idx].id);
            if self.frames[idx].dirty {
                store
                    .lock()
                    .write(self.frames[idx].id, &self.frames[idx].page)?;
                self.stats.writebacks += 1;
            }
            self.stats.evictions += 1;
        }
        if load {
            store.lock().read(id, &mut self.frames[idx].page)?;
        } else {
            self.frames[idx].page.as_mut_slice().fill(0);
        }
        self.frames[idx].id = id;
        self.frames[idx].dirty = false;
        self.frames[idx].pins = 0;
        self.frames[idx].referenced = false;
        self.frames[idx].prefetched = false;
        self.map.insert(id, idx);
        Ok(())
    }

    /// Pick a frame to (re)use: an unused slot if capacity remains, else the
    /// clock algorithm over unpinned frames.
    fn victim(&mut self) -> StorageResult<usize> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                id: PageId::INVALID,
                page: Page::zeroed(),
                dirty: false,
                pins: 0,
                referenced: false,
                prefetched: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Two full sweeps: first clears reference bits, second must find a
        // victim unless everything is pinned.
        for _ in 0..2 * self.frames.len() {
            let idx = self.clock;
            self.clock = (self.clock + 1) % self.frames.len();
            let f = &mut self.frames[idx];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Ok(idx);
        }
        Err(StorageError::PoolExhausted {
            capacity: self.capacity,
        })
    }

    /// Write back every dirty frame (without syncing the store).
    fn flush<S: PageStore>(&mut self, store: &Mutex<S>) -> StorageResult<()> {
        for f in &mut self.frames {
            if f.id.is_valid() && f.dirty {
                store.lock().write(f.id, &f.page)?;
                f.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }
}

/// A buffer pool over a [`PageStore`].
pub struct BufferPool<S: PageStore> {
    store: Mutex<S>,
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
}

impl<S: PageStore> BufferPool<S> {
    /// Create a pool caching up to `capacity` pages, sharded so that each
    /// shard holds at least [`FRAMES_PER_SHARD`] frames (one shard for
    /// small pools, up to [`MAX_SHARDS`] for large ones).
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        let nshards = (capacity / FRAMES_PER_SHARD).clamp(1, MAX_SHARDS);
        let base = capacity / nshards;
        let extra = capacity % nshards;
        let shards = (0..nshards)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < extra))))
            .collect();
        BufferPool {
            store: Mutex::new(store),
            shards,
            capacity,
        }
    }

    /// Total frame capacity across shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of bookkeeping shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: PageId) -> &Mutex<Shard> {
        &self.shards[(id.0 as usize) % self.shards.len()]
    }

    /// Cache statistics so far, aggregated across shards.
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for s in &self.shards {
            total.add(&s.lock().stats);
        }
        total
    }

    /// Reset cache statistics (between bench phases).
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.lock().stats.reset();
        }
    }

    /// Number of frames currently resident.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Allocate a fresh page in the store and fault it into the pool.
    pub fn allocate_page(&self) -> StorageResult<PageId> {
        let id = self.store.lock().allocate()?;
        // Fault it in dirty so the zero image need not be re-read.
        let mut shard = self.shard(id).lock();
        let idx = shard.frame_for(&self.store, id, /*load=*/ false)?;
        shard.frames[idx].dirty = true;
        shard.frames[idx].pins -= 1;
        Ok(id)
    }

    /// Drop the page from the pool (without writeback) and free it in the
    /// store.
    pub fn free_page(&self, id: PageId) -> StorageResult<()> {
        {
            let mut shard = self.shard(id).lock();
            if let Some(idx) = shard.map.remove(&id) {
                assert_eq!(shard.frames[idx].pins, 0, "freeing a pinned page");
                shard.frames[idx].id = PageId::INVALID;
                shard.frames[idx].dirty = false;
            }
        }
        self.store.lock().free(id)
    }

    /// Run `f` with read access to the page.
    ///
    /// The page's shard stays locked for the duration of `f`; the closure
    /// must not call back into the pool (same non-reentrancy discipline the
    /// old exclusive-access API enforced through `&mut self`).
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> StorageResult<R> {
        let mut shard = self.shard(id).lock();
        let idx = shard.frame_for(&self.store, id, true)?;
        let out = f(&shard.frames[idx].page);
        shard.frames[idx].pins -= 1;
        Ok(out)
    }

    /// Run `f` with write access to the page; the frame is marked dirty.
    /// Same non-reentrancy rule as [`BufferPool::with_page`].
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> StorageResult<R> {
        let mut shard = self.shard(id).lock();
        let idx = shard.frame_for(&self.store, id, true)?;
        shard.frames[idx].dirty = true;
        let out = f(&mut shard.frames[idx].page);
        shard.frames[idx].pins -= 1;
        Ok(out)
    }

    /// Fault `ids` into the pool without pinning them (sequential
    /// readahead).
    ///
    /// Pages already resident are skipped. Loaded frames start with the
    /// reference bit clear and are flagged as prefetched: a scan that then
    /// touches each page exactly once counts a
    /// [`PoolStats::prefetch_hits`] per page but never sets the reference
    /// bit, so one-pass sequential scans cannot flush the hot working set
    /// out of the clock (scan resistance). Best-effort: skips quietly when
    /// a shard's frames are all pinned.
    pub fn prefetch(&self, ids: &[PageId]) -> StorageResult<()> {
        for &id in ids {
            if !id.is_valid() {
                continue;
            }
            let mut shard = self.shard(id).lock();
            if shard.map.contains_key(&id) {
                continue;
            }
            let Ok(idx) = shard.victim() else {
                continue;
            };
            shard.load_into(&self.store, idx, id, true)?;
            shard.frames[idx].prefetched = true;
            shard.stats.prefetches += 1;
        }
        Ok(())
    }

    /// Write back every dirty frame and sync the store.
    pub fn flush_all(&self) -> StorageResult<()> {
        for s in &self.shards {
            s.lock().flush(&self.store)?;
        }
        self.store.lock().sync()
    }

    /// Run `f` with exclusive access to the underlying store (e.g. for
    /// direct recovery reads).
    ///
    /// Care: bypassing the pool for writes invalidates cached frames; this
    /// is only sound for pages not resident, as in recovery before any
    /// access.
    pub fn with_store<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.store.lock())
    }
}

impl<S: PageStore> Drop for BufferPool<S> {
    fn drop(&mut self) {
        // Best-effort writeback; errors on drop are ignored by design.
        let _ = self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(cap: usize) -> BufferPool<MemStore> {
        BufferPool::new(MemStore::new(), cap)
    }

    #[test]
    fn read_your_writes_through_pool() {
        let p = pool(4);
        let id = p.allocate_page().unwrap();
        p.with_page_mut(id, |pg| pg.as_mut_slice()[0] = 42).unwrap();
        let v = p.with_page(id, |pg| pg.as_slice()[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let ids: Vec<PageId> = (0..8).map(|_| p.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg.as_mut_slice()[0] = i as u8)
                .unwrap();
        }
        // Every page must still read back correctly despite evictions.
        for (i, id) in ids.iter().enumerate() {
            let v = p.with_page(*id, |pg| pg.as_slice()[0]).unwrap();
            assert_eq!(v, i as u8, "page {i} lost its contents");
        }
        assert!(p.stats().evictions > 0, "capacity 2 must evict");
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let p = pool(4);
        let id = p.allocate_page().unwrap();
        p.reset_stats();
        p.with_page(id, |_| ()).unwrap();
        p.with_page(id, |_| ()).unwrap();
        let s = p.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn flush_all_persists_to_store() {
        let p = pool(4);
        let id = p.allocate_page().unwrap();
        p.with_page_mut(id, |pg| pg.as_mut_slice()[7] = 9).unwrap();
        p.flush_all().unwrap();
        let mut out = Page::zeroed();
        p.with_store(|s| s.read(id, &mut out)).unwrap();
        assert_eq!(out.as_slice()[7], 9);
    }

    #[test]
    fn free_page_removes_from_pool_and_store() {
        let p = pool(4);
        let id = p.allocate_page().unwrap();
        p.free_page(id).unwrap();
        assert!(p.with_page(id, |_| ()).is_err());
    }

    #[test]
    fn single_frame_pool_works() {
        let p = pool(1);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        p.with_page_mut(a, |pg| pg.as_mut_slice()[0] = 1).unwrap();
        p.with_page_mut(b, |pg| pg.as_mut_slice()[0] = 2).unwrap();
        assert_eq!(p.with_page(a, |pg| pg.as_slice()[0]).unwrap(), 1);
        assert_eq!(p.with_page(b, |pg| pg.as_slice()[0]).unwrap(), 2);
        assert_eq!(p.resident(), 1);
    }

    #[test]
    fn prefetch_counts_and_serves_hits() {
        // Capacity 2 so writing 6 pages evicts the early ones.
        let p = pool(2);
        let ids: Vec<PageId> = (0..6).map(|_| p.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg.as_mut_slice()[0] = i as u8)
                .unwrap();
        }
        p.reset_stats();
        p.prefetch(&ids[0..1]).unwrap();
        assert_eq!(p.stats().prefetches, 1);
        let v = p.with_page(ids[0], |pg| pg.as_slice()[0]).unwrap();
        assert_eq!(v, 0);
        let s = p.stats();
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.hits, 1, "prefetched page served without a store read");
    }

    #[test]
    fn prefetched_frames_are_scan_resistant() {
        let p = pool(2);
        let hot = p.allocate_page().unwrap();
        let cold: Vec<PageId> = (0..4).map(|_| p.allocate_page().unwrap()).collect();
        // Stream the cold pages through (prefetch + one touch each) while
        // the hot page is re-referenced between pages, as a browse cursor
        // interleaved with a scan would be.
        p.with_page(hot, |_| ()).unwrap();
        for id in &cold {
            p.prefetch(&[*id]).unwrap();
            p.with_page(*id, |_| ()).unwrap();
            p.with_page(hot, |_| ()).unwrap();
        }
        p.reset_stats();
        // The hot page must still be resident: its reference bit protected
        // it, while the once-touched prefetched pages stayed evictable.
        p.with_page(hot, |_| ()).unwrap();
        assert_eq!(p.stats().hits, 1, "hot page evicted by a one-pass scan");
    }

    #[test]
    fn prefetch_skips_resident_pages() {
        let p = pool(4);
        let id = p.allocate_page().unwrap();
        p.reset_stats();
        p.prefetch(&[id]).unwrap();
        assert_eq!(p.stats().prefetches, 0);
        // And the resident frame's state is untouched: a read is a plain hit.
        p.with_page(id, |_| ()).unwrap();
        assert_eq!(p.stats().prefetch_hits, 0);
    }

    #[test]
    fn many_pages_random_access_consistency() {
        let p = pool(8);
        let n = 100u8;
        let ids: Vec<PageId> = (0..n).map(|_| p.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg.as_mut_slice()[100] = i as u8)
                .unwrap();
        }
        // Strided access pattern to churn the clock.
        for stride in [1usize, 3, 7, 13] {
            let mut i = 0usize;
            for _ in 0..n {
                let v = p.with_page(ids[i], |pg| pg.as_slice()[100]).unwrap();
                assert_eq!(v, i as u8);
                i = (i + stride) % n as usize;
            }
        }
    }

    #[test]
    fn small_pools_are_single_sharded() {
        assert_eq!(pool(1).shard_count(), 1);
        assert_eq!(pool(8).shard_count(), 1);
        assert_eq!(pool(15).shard_count(), 1);
        assert_eq!(pool(32).shard_count(), 4);
        let big = pool(1024);
        assert_eq!(big.shard_count(), 16);
        assert_eq!(big.capacity(), 1024);
    }

    #[test]
    fn sharded_pool_consistency_and_stat_aggregation() {
        let p = pool(64); // 8 shards
        assert!(p.shard_count() > 1);
        let ids: Vec<PageId> = (0..200).map(|_| p.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg.as_mut_slice()[3] = i as u8)
                .unwrap();
        }
        for (i, id) in ids.iter().enumerate() {
            let v = p.with_page(*id, |pg| pg.as_slice()[3]).unwrap();
            assert_eq!(v, i as u8);
        }
        let s = p.stats();
        assert!(s.misses > 0 && s.evictions > 0, "{s:?}");
        assert!(p.resident() <= 64);
        p.reset_stats();
        assert_eq!(p.stats(), PoolStats::default());
    }

    #[test]
    fn concurrent_readers_see_consistent_pages() {
        let p = pool(64);
        let ids: Vec<PageId> = (0..300).map(|_| p.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            p.with_page_mut(*id, |pg| pg.as_mut_slice()[9] = (i % 251) as u8)
                .unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = &p;
                let ids = &ids;
                s.spawn(move || {
                    for (i, id) in ids.iter().enumerate().skip(t).step_by(4) {
                        let v = p.with_page(*id, |pg| pg.as_slice()[9]).unwrap();
                        assert_eq!(v, (i % 251) as u8);
                    }
                });
            }
        });
    }
}
