//! A page-based B+tree mapping byte-comparable keys to [`Rid`]s.
//!
//! This is the ordered access path underneath browse cursors: the *Windows
//! on the World* browse model fetches one screenful of records at a time by
//! walking the leaf chain, so the tree exposes both point/range queries and
//! a resumable [`BTreeCursor`].
//!
//! Keys are arbitrary byte strings compared lexicographically; the typed
//! layer (`wow-rel`) produces order-preserving encodings. Non-unique indexes
//! disambiguate duplicates by appending the rid to the key (see
//! [`composite_key`]), so every entry in the tree is physically unique.
//!
//! Deletion is *lazy*: entries are removed from leaves but nodes are never
//! merged. Underfull nodes cost some space, never correctness — the same
//! trade early commercial engines made.
//!
//! Node pages are (de)serialized whole:
//!
//! ```text
//! 0      tag: 0 = leaf, 1 = internal
//! 1..3   entry count (u16)
//! 3..11  leaf: next-leaf page id   | internal: leftmost child page id
//! 11..   entries
//!         leaf:     {klen: u16, key, rid: 10 bytes}
//!         internal: {klen: u16, key, child: 8 bytes}  (child holds keys >= key)
//! ```

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{get_u16, get_u64, put_u16, put_u64, PageId, PAGE_SIZE};
use crate::rid::Rid;
use crate::store::PageStore;
use std::ops::Bound;

/// Maximum key length accepted by the tree.
pub const MAX_KEY: usize = 1024;

const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;
const NODE_HEADER: usize = 11;
const LEAF_ENTRY_OVERHEAD: usize = 2 + 10;
const INTERNAL_ENTRY_OVERHEAD: usize = 2 + 8;

/// Meta-page field offsets.
const META_ROOT: usize = 0;
const META_COUNT: usize = 8;
const META_UNIQUE: usize = 16;

/// Build the composite key used by non-unique indexes: `key ++ rid`, which
/// sorts by key then rid and makes every entry unique.
pub fn composite_key(key: &[u8], rid: Rid) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() + 10);
    out.extend_from_slice(key);
    out.extend_from_slice(&rid.to_bytes());
    out
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        next: PageId,
        entries: Vec<(Vec<u8>, Rid)>,
    },
    Internal {
        first_child: PageId,
        entries: Vec<(Vec<u8>, PageId)>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => {
                NODE_HEADER
                    + entries
                        .iter()
                        .map(|(k, _)| LEAF_ENTRY_OVERHEAD + k.len())
                        .sum::<usize>()
            }
            Node::Internal { entries, .. } => {
                NODE_HEADER
                    + entries
                        .iter()
                        .map(|(k, _)| INTERNAL_ENTRY_OVERHEAD + k.len())
                        .sum::<usize>()
            }
        }
    }

    fn write_to(&self, buf: &mut [u8]) {
        match self {
            Node::Leaf { next, entries } => {
                buf[0] = TAG_LEAF;
                put_u16(buf, 1, entries.len() as u16);
                put_u64(buf, 3, next.0);
                let mut off = NODE_HEADER;
                for (k, rid) in entries {
                    put_u16(buf, off, k.len() as u16);
                    off += 2;
                    buf[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                    buf[off..off + 10].copy_from_slice(&rid.to_bytes());
                    off += 10;
                }
            }
            Node::Internal {
                first_child,
                entries,
            } => {
                buf[0] = TAG_INTERNAL;
                put_u16(buf, 1, entries.len() as u16);
                put_u64(buf, 3, first_child.0);
                let mut off = NODE_HEADER;
                for (k, child) in entries {
                    put_u16(buf, off, k.len() as u16);
                    off += 2;
                    buf[off..off + k.len()].copy_from_slice(k);
                    off += k.len();
                    put_u64(buf, off, child.0);
                    off += 8;
                }
            }
        }
    }

    fn read_from(buf: &[u8]) -> StorageResult<Node> {
        let count = get_u16(buf, 1) as usize;
        let mut off = NODE_HEADER;
        match buf[0] {
            TAG_LEAF => {
                let next = PageId(get_u64(buf, 3));
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = get_u16(buf, off) as usize;
                    off += 2;
                    let key = buf[off..off + klen].to_vec();
                    off += klen;
                    let rid = Rid::from_bytes(&buf[off..off + 10])
                        .ok_or(StorageError::Corrupt("bad leaf rid"))?;
                    off += 10;
                    entries.push((key, rid));
                }
                Ok(Node::Leaf { next, entries })
            }
            TAG_INTERNAL => {
                let first_child = PageId(get_u64(buf, 3));
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = get_u16(buf, off) as usize;
                    off += 2;
                    let key = buf[off..off + klen].to_vec();
                    off += klen;
                    let child = PageId(get_u64(buf, off));
                    off += 8;
                    entries.push((key, child));
                }
                Ok(Node::Internal {
                    first_child,
                    entries,
                })
            }
            _ => Err(StorageError::Corrupt("bad btree node tag")),
        }
    }
}

/// A B+tree index rooted at a meta page.
#[derive(Clone)]
pub struct BTree {
    meta: PageId,
    root: PageId,
    count: u64,
    unique: bool,
}

impl BTree {
    /// Create an empty tree. `unique` rejects duplicate keys on insert.
    pub fn create<S: PageStore>(pool: &BufferPool<S>, unique: bool) -> StorageResult<BTree> {
        let meta = pool.allocate_page()?;
        let root = pool.allocate_page()?;
        let empty = Node::Leaf {
            next: PageId::INVALID,
            entries: Vec::new(),
        };
        pool.with_page_mut(root, |p| empty.write_to(p.as_mut_slice()))?;
        pool.with_page_mut(meta, |p| {
            let b = p.as_mut_slice();
            put_u64(b, META_ROOT, root.0);
            put_u64(b, META_COUNT, 0);
            b[META_UNIQUE] = unique as u8;
        })?;
        Ok(BTree {
            meta,
            root,
            count: 0,
            unique,
        })
    }

    /// Open an existing tree rooted at `meta`.
    pub fn open<S: PageStore>(pool: &BufferPool<S>, meta: PageId) -> StorageResult<BTree> {
        let (root, count, unique) = pool.with_page(meta, |p| {
            let b = p.as_slice();
            (
                PageId(get_u64(b, META_ROOT)),
                get_u64(b, META_COUNT),
                b[META_UNIQUE] != 0,
            )
        })?;
        Ok(BTree {
            meta,
            root,
            count,
            unique,
        })
    }

    /// The meta page id (persist this to reopen the index).
    pub fn meta_page(&self) -> PageId {
        self.meta
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether the tree enforces key uniqueness.
    pub fn is_unique(&self) -> bool {
        self.unique
    }

    fn read_node<S: PageStore>(pool: &BufferPool<S>, pid: PageId) -> StorageResult<Node> {
        pool.with_page(pid, |p| Node::read_from(p.as_slice()))?
    }

    fn write_node<S: PageStore>(
        pool: &BufferPool<S>,
        pid: PageId,
        node: &Node,
    ) -> StorageResult<()> {
        debug_assert!(node.serialized_size() <= PAGE_SIZE);
        pool.with_page_mut(pid, |p| node.write_to(p.as_mut_slice()))
    }

    fn persist_meta<S: PageStore>(&self, pool: &BufferPool<S>) -> StorageResult<()> {
        let (root, count) = (self.root, self.count);
        pool.with_page_mut(self.meta, |p| {
            let b = p.as_mut_slice();
            put_u64(b, META_ROOT, root.0);
            put_u64(b, META_COUNT, count);
        })
    }

    /// Insert an entry. For unique trees, returns [`StorageError::DuplicateKey`]
    /// if the key is already present.
    pub fn insert<S: PageStore>(
        &mut self,
        pool: &BufferPool<S>,
        key: &[u8],
        rid: Rid,
    ) -> StorageResult<()> {
        if key.len() > MAX_KEY {
            return Err(StorageError::RecordTooLarge {
                size: key.len(),
                max: MAX_KEY,
            });
        }
        if let Some((split_key, right)) = self.insert_rec(pool, self.root, key, rid)? {
            // Root split: grow the tree by one level.
            let new_root = pool.allocate_page()?;
            let node = Node::Internal {
                first_child: self.root,
                entries: vec![(split_key, right)],
            };
            Self::write_node(pool, new_root, &node)?;
            self.root = new_root;
        }
        self.count += 1;
        self.persist_meta(pool)
    }

    fn insert_rec<S: PageStore>(
        &mut self,
        pool: &BufferPool<S>,
        pid: PageId,
        key: &[u8],
        rid: Rid,
    ) -> StorageResult<Option<(Vec<u8>, PageId)>> {
        let node = Self::read_node(pool, pid)?;
        match node {
            Node::Leaf { next, mut entries } => {
                let pos = entries.partition_point(|(k, _)| k.as_slice() < key);
                if self.unique && entries.get(pos).is_some_and(|(k, _)| k == key) {
                    return Err(StorageError::DuplicateKey);
                }
                entries.insert(pos, (key.to_vec(), rid));
                let node = Node::Leaf { next, entries };
                if node.serialized_size() <= PAGE_SIZE {
                    Self::write_node(pool, pid, &node)?;
                    return Ok(None);
                }
                // Split the leaf at the size midpoint.
                let Node::Leaf { next, entries } = node else {
                    unreachable!()
                };
                let mid = split_point(entries.iter().map(|(k, _)| LEAF_ENTRY_OVERHEAD + k.len()));
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let right_pid = pool.allocate_page()?;
                let split_key = right_entries[0].0.clone();
                Self::write_node(
                    pool,
                    right_pid,
                    &Node::Leaf {
                        next,
                        entries: right_entries,
                    },
                )?;
                Self::write_node(
                    pool,
                    pid,
                    &Node::Leaf {
                        next: right_pid,
                        entries: left_entries,
                    },
                )?;
                Ok(Some((split_key, right_pid)))
            }
            Node::Internal {
                first_child,
                mut entries,
            } => {
                // Child for `key`: last entry with sep <= key, else first_child.
                let pos = entries.partition_point(|(k, _)| k.as_slice() <= key);
                let child = if pos == 0 {
                    first_child
                } else {
                    entries[pos - 1].1
                };
                let Some((split_key, right)) = self.insert_rec(pool, child, key, rid)? else {
                    return Ok(None);
                };
                entries.insert(pos, (split_key, right));
                let node = Node::Internal {
                    first_child,
                    entries,
                };
                if node.serialized_size() <= PAGE_SIZE {
                    Self::write_node(pool, pid, &node)?;
                    return Ok(None);
                }
                let Node::Internal {
                    first_child,
                    entries,
                } = node
                else {
                    unreachable!()
                };
                let mid = split_point(
                    entries
                        .iter()
                        .map(|(k, _)| INTERNAL_ENTRY_OVERHEAD + k.len()),
                );
                // The separator at `mid` moves *up*, not into the right node.
                let promote = entries[mid].0.clone();
                let right_first = entries[mid].1;
                let right_entries = entries[mid + 1..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let right_pid = pool.allocate_page()?;
                Self::write_node(
                    pool,
                    right_pid,
                    &Node::Internal {
                        first_child: right_first,
                        entries: right_entries,
                    },
                )?;
                Self::write_node(
                    pool,
                    pid,
                    &Node::Internal {
                        first_child,
                        entries: left_entries,
                    },
                )?;
                Ok(Some((promote, right_pid)))
            }
        }
    }

    /// Find the leaf that would contain `key`, returning its page id.
    fn find_leaf<S: PageStore>(&self, pool: &BufferPool<S>, key: &[u8]) -> StorageResult<PageId> {
        let mut pid = self.root;
        loop {
            match Self::read_node(pool, pid)? {
                Node::Leaf { .. } => return Ok(pid),
                Node::Internal {
                    first_child,
                    entries,
                } => {
                    let pos = entries.partition_point(|(k, _)| k.as_slice() <= key);
                    pid = if pos == 0 {
                        first_child
                    } else {
                        entries[pos - 1].1
                    };
                }
            }
        }
    }

    /// All rids stored under exactly `key`.
    pub fn lookup<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        key: &[u8],
    ) -> StorageResult<Vec<Rid>> {
        let mut out = Vec::new();
        let mut pid = self.find_leaf(pool, key)?;
        'chain: while pid.is_valid() {
            let Node::Leaf { next, entries } = Self::read_node(pool, pid)? else {
                return Err(StorageError::Corrupt("expected leaf"));
            };
            let start = entries.partition_point(|(k, _)| k.as_slice() < key);
            for (k, rid) in &entries[start..] {
                if k.as_slice() != key {
                    break 'chain;
                }
                out.push(*rid);
            }
            // Key run may continue on the next leaf only if it reached the end.
            if entries.is_empty() || entries.last().unwrap().0.as_slice() == key {
                pid = next;
            } else {
                break;
            }
        }
        Ok(out)
    }

    /// Whether any entry exists under exactly `key` — an allocation-free
    /// existence probe that stops at the first hit. Delta propagation uses
    /// this to decide whether a write joins with anything before paying for
    /// a residual query.
    pub fn contains<S: PageStore>(&self, pool: &BufferPool<S>, key: &[u8]) -> StorageResult<bool> {
        let mut found = false;
        self.range_scan(pool, Bound::Included(key), Bound::Included(key), |_, _| {
            found = true;
            false
        })?;
        Ok(found)
    }

    /// Whether any entry's (composite) key starts with `prefix` — the
    /// existence probe counterpart of [`BTree::lookup_prefix`].
    pub fn contains_prefix<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        prefix: &[u8],
    ) -> StorageResult<bool> {
        let mut found = false;
        self.range_scan(pool, Bound::Included(prefix), Bound::Unbounded, |k, _| {
            found = k.starts_with(prefix);
            false
        })?;
        Ok(found)
    }

    /// All rids whose (composite) key starts with `prefix` — the lookup used
    /// by non-unique indexes built with [`composite_key`].
    pub fn lookup_prefix<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        prefix: &[u8],
    ) -> StorageResult<Vec<Rid>> {
        let mut out = Vec::new();
        self.range_scan(pool, Bound::Included(prefix), Bound::Unbounded, |k, rid| {
            if k.starts_with(prefix) {
                out.push(rid);
                true
            } else {
                false
            }
        })?;
        Ok(out)
    }

    /// Remove the entry `(key, rid)`. Returns whether it existed.
    pub fn delete<S: PageStore>(
        &mut self,
        pool: &BufferPool<S>,
        key: &[u8],
        rid: Rid,
    ) -> StorageResult<bool> {
        let mut pid = self.find_leaf(pool, key)?;
        while pid.is_valid() {
            let Node::Leaf { next, mut entries } = Self::read_node(pool, pid)? else {
                return Err(StorageError::Corrupt("expected leaf"));
            };
            let start = entries.partition_point(|(k, _)| k.as_slice() < key);
            if start == entries.len() {
                // Run may continue on the next leaf.
                pid = next;
                continue;
            }
            let mut i = start;
            while i < entries.len() && entries[i].0.as_slice() == key {
                if entries[i].1 == rid {
                    entries.remove(i);
                    Self::write_node(pool, pid, &Node::Leaf { next, entries })?;
                    self.count -= 1;
                    self.persist_meta(pool)?;
                    return Ok(true);
                }
                i += 1;
            }
            if i < entries.len() {
                return Ok(false); // passed the key run without a rid match
            }
            pid = next;
        }
        Ok(false)
    }

    /// Scan entries in `[lower, upper]` order, calling `f(key, rid)`; stop
    /// early when `f` returns `false`.
    pub fn range_scan<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
        mut f: impl FnMut(&[u8], Rid) -> bool,
    ) -> StorageResult<()> {
        let mut cursor = self.cursor_at(pool, lower)?;
        while let Some((key, rid)) = cursor.next(pool, self)? {
            let in_range = match upper {
                Bound::Unbounded => true,
                Bound::Included(u) => key.as_slice() <= u,
                Bound::Excluded(u) => key.as_slice() < u,
            };
            if !in_range || !f(&key, rid) {
                break;
            }
        }
        Ok(())
    }

    /// Collect a bounded range (convenience for tests).
    pub fn range<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        lower: Bound<&[u8]>,
        upper: Bound<&[u8]>,
    ) -> StorageResult<Vec<(Vec<u8>, Rid)>> {
        let mut out = Vec::new();
        self.range_scan(pool, lower, upper, |k, r| {
            out.push((k.to_vec(), r));
            true
        })?;
        Ok(out)
    }

    /// Position a cursor at the first entry >= `lower`.
    pub fn cursor_at<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        lower: Bound<&[u8]>,
    ) -> StorageResult<BTreeCursor> {
        let (leaf, idx) = match lower {
            Bound::Unbounded => {
                // Descend to the leftmost leaf.
                let mut pid = self.root;
                loop {
                    match Self::read_node(pool, pid)? {
                        Node::Leaf { .. } => break (pid, 0),
                        Node::Internal { first_child, .. } => pid = first_child,
                    }
                }
            }
            Bound::Included(key) | Bound::Excluded(key) => {
                let pid = self.find_leaf(pool, key)?;
                let Node::Leaf { entries, .. } = Self::read_node(pool, pid)? else {
                    return Err(StorageError::Corrupt("expected leaf"));
                };
                let idx = match lower {
                    Bound::Included(_) => entries.partition_point(|(k, _)| k.as_slice() < key),
                    _ => entries.partition_point(|(k, _)| k.as_slice() <= key),
                };
                (pid, idx)
            }
        };
        Ok(BTreeCursor {
            leaf,
            idx: idx as u32,
        })
    }

    /// Free every page of the tree.
    pub fn destroy<S: PageStore>(self, pool: &BufferPool<S>) -> StorageResult<()> {
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            if let Node::Internal {
                first_child,
                entries,
            } = Self::read_node(pool, pid)?
            {
                stack.push(first_child);
                stack.extend(entries.iter().map(|(_, c)| *c));
            }
            pool.free_page(pid)?;
        }
        pool.free_page(self.meta)
    }

    /// Depth of the tree (1 = just a root leaf). For tests and stats.
    pub fn height<S: PageStore>(&self, pool: &BufferPool<S>) -> StorageResult<usize> {
        let mut h = 1;
        let mut pid = self.root;
        loop {
            match Self::read_node(pool, pid)? {
                Node::Leaf { .. } => return Ok(h),
                Node::Internal { first_child, .. } => {
                    pid = first_child;
                    h += 1;
                }
            }
        }
    }
}

/// Pick the split index such that both halves have at least one entry and
/// sizes are as balanced as possible.
fn split_point(sizes: impl Iterator<Item = usize>) -> usize {
    let sizes: Vec<usize> = sizes.collect();
    let total: usize = sizes.iter().sum();
    let mut acc = 0;
    for (i, s) in sizes.iter().enumerate() {
        acc += s;
        if acc * 2 >= total {
            // Never split off an empty half.
            return (i + 1).clamp(1, sizes.len() - 1);
        }
    }
    sizes.len() / 2
}

/// A resumable position in the leaf chain.
///
/// The cursor is a *hint*: if the tree is mutated between `next` calls the
/// position may drift (a split moves entries right). Layers that interleave
/// mutation with browsing re-seek by the last-seen key instead of trusting a
/// stale cursor; within a read-only browse the cursor is exact.
#[derive(Debug, Clone, Copy)]
pub struct BTreeCursor {
    leaf: PageId,
    idx: u32,
}

impl BTreeCursor {
    /// Advance and return the next `(key, rid)` entry, or `None` at the end.
    pub fn next<S: PageStore>(
        &mut self,
        pool: &BufferPool<S>,
        tree: &BTree,
    ) -> StorageResult<Option<(Vec<u8>, Rid)>> {
        let _ = tree;
        while self.leaf.is_valid() {
            let node = BTree::read_node(pool, self.leaf)?;
            let Node::Leaf { next, entries } = node else {
                return Err(StorageError::Corrupt("cursor not on a leaf"));
            };
            if (self.idx as usize) < entries.len() {
                let (k, rid) = entries[self.idx as usize].clone();
                self.idx += 1;
                return Ok(Some((k, rid)));
            }
            self.leaf = next;
            self.idx = 0;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn setup(unique: bool) -> (BufferPool<MemStore>, BTree) {
        let pool = BufferPool::new(MemStore::new(), 64);
        let tree = BTree::create(&pool, unique).unwrap();
        (pool, tree)
    }

    fn rid(n: u64) -> Rid {
        Rid::new(PageId(n), (n % 7) as u16)
    }

    #[test]
    fn insert_lookup_small() {
        let (pool, mut t) = setup(true);
        t.insert(&pool, b"banana", rid(1)).unwrap();
        t.insert(&pool, b"apple", rid(2)).unwrap();
        t.insert(&pool, b"cherry", rid(3)).unwrap();
        assert_eq!(t.lookup(&pool, b"apple").unwrap(), vec![rid(2)]);
        assert_eq!(t.lookup(&pool, b"banana").unwrap(), vec![rid(1)]);
        assert_eq!(t.lookup(&pool, b"durian").unwrap(), Vec::<Rid>::new());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unique_tree_rejects_duplicates() {
        let (pool, mut t) = setup(true);
        t.insert(&pool, b"k", rid(1)).unwrap();
        assert!(matches!(
            t.insert(&pool, b"k", rid(2)),
            Err(StorageError::DuplicateKey)
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn non_unique_tree_accumulates_duplicates() {
        let (pool, mut t) = setup(false);
        for i in 0..10 {
            t.insert(&pool, b"same", rid(i)).unwrap();
        }
        let rids = t.lookup(&pool, b"same").unwrap();
        assert_eq!(rids.len(), 10);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let (pool, mut t) = setup(true);
        let n = 5000u32;
        // Insert in a scrambled order.
        let mut keys: Vec<u32> = (0..n).collect();
        let mut state = 0x12345678u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for &k in &keys {
            t.insert(&pool, &k.to_be_bytes(), rid(k as u64)).unwrap();
        }
        assert!(t.height(&pool).unwrap() >= 2, "tree must have split");
        // Full ordered scan returns every key in order.
        let all = t.range(&pool, Bound::Unbounded, Bound::Unbounded).unwrap();
        assert_eq!(all.len(), n as usize);
        for (i, (k, r)) in all.iter().enumerate() {
            assert_eq!(k.as_slice(), (i as u32).to_be_bytes());
            assert_eq!(*r, rid(i as u64));
        }
        // Point lookups all work.
        for probe in [0u32, 1, 17, 999, 2500, n - 1] {
            assert_eq!(
                t.lookup(&pool, &probe.to_be_bytes()).unwrap(),
                vec![rid(probe as u64)]
            );
        }
    }

    #[test]
    fn range_bounds_are_respected() {
        let (pool, mut t) = setup(true);
        for k in 0..100u32 {
            t.insert(&pool, &k.to_be_bytes(), rid(k as u64)).unwrap();
        }
        let lo = 10u32.to_be_bytes();
        let hi = 20u32.to_be_bytes();
        let incl = t
            .range(&pool, Bound::Included(&lo), Bound::Included(&hi))
            .unwrap();
        assert_eq!(incl.len(), 11);
        let excl = t
            .range(&pool, Bound::Excluded(&lo), Bound::Excluded(&hi))
            .unwrap();
        assert_eq!(excl.len(), 9);
        assert_eq!(excl[0].0, 11u32.to_be_bytes());
    }

    #[test]
    fn delete_removes_exact_entry() {
        let (pool, mut t) = setup(false);
        t.insert(&pool, b"k", rid(1)).unwrap();
        t.insert(&pool, b"k", rid(2)).unwrap();
        assert!(t.delete(&pool, b"k", rid(1)).unwrap());
        assert_eq!(t.lookup(&pool, b"k").unwrap(), vec![rid(2)]);
        assert!(!t.delete(&pool, b"k", rid(1)).unwrap());
        assert!(!t.delete(&pool, b"missing", rid(1)).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_across_split_leaves() {
        let (pool, mut t) = setup(true);
        let n = 3000u32;
        for k in 0..n {
            t.insert(&pool, &k.to_be_bytes(), rid(k as u64)).unwrap();
        }
        for k in (0..n).step_by(2) {
            assert!(t.delete(&pool, &k.to_be_bytes(), rid(k as u64)).unwrap());
        }
        assert_eq!(t.len() as u32, n / 2);
        let all = t.range(&pool, Bound::Unbounded, Bound::Unbounded).unwrap();
        assert!(all
            .iter()
            .all(|(k, _)| { u32::from_be_bytes(k.as_slice().try_into().unwrap()) % 2 == 1 }));
    }

    #[test]
    fn cursor_walks_whole_tree_incrementally() {
        let (pool, mut t) = setup(true);
        for k in 0..1000u32 {
            t.insert(&pool, &k.to_be_bytes(), rid(k as u64)).unwrap();
        }
        let mut cur = t.cursor_at(&pool, Bound::Unbounded).unwrap();
        let mut seen = 0u32;
        while let Some((k, _)) = cur.next(&pool, &t).unwrap() {
            assert_eq!(k, seen.to_be_bytes());
            seen += 1;
        }
        assert_eq!(seen, 1000);
    }

    #[test]
    fn cursor_seek_positions_mid_tree() {
        let (pool, mut t) = setup(true);
        for k in (0..1000u32).step_by(2) {
            t.insert(&pool, &k.to_be_bytes(), rid(k as u64)).unwrap();
        }
        // Seek to a key that is absent (odd): next entry is the even above it.
        let probe = 501u32.to_be_bytes();
        let mut cur = t.cursor_at(&pool, Bound::Included(&probe)).unwrap();
        let (k, _) = cur.next(&pool, &t).unwrap().unwrap();
        assert_eq!(k, 502u32.to_be_bytes());
    }

    #[test]
    fn composite_keys_give_per_duplicate_deletion() {
        let (pool, mut t) = setup(true); // physically unique
        for i in 0..50u64 {
            let ck = composite_key(b"dept=sales", rid(i));
            t.insert(&pool, &ck, rid(i)).unwrap();
        }
        let hits = t.lookup_prefix(&pool, b"dept=sales").unwrap();
        assert_eq!(hits.len(), 50);
        let ck = composite_key(b"dept=sales", rid(7));
        assert!(t.delete(&pool, &ck, rid(7)).unwrap());
        assert_eq!(t.lookup_prefix(&pool, b"dept=sales").unwrap().len(), 49);
    }

    #[test]
    fn reopen_preserves_tree() {
        let pool = BufferPool::new(MemStore::new(), 64);
        let meta;
        {
            let mut t = BTree::create(&pool, true).unwrap();
            meta = t.meta_page();
            for k in 0..2000u32 {
                t.insert(&pool, &k.to_be_bytes(), rid(k as u64)).unwrap();
            }
        }
        let t = BTree::open(&pool, meta).unwrap();
        assert_eq!(t.len(), 2000);
        assert!(t.is_unique());
        assert_eq!(
            t.lookup(&pool, &1234u32.to_be_bytes()).unwrap(),
            vec![rid(1234)]
        );
    }

    #[test]
    fn oversized_key_is_rejected() {
        let (pool, mut t) = setup(true);
        let big = vec![0u8; MAX_KEY + 1];
        assert!(t.insert(&pool, &big, rid(0)).is_err());
    }

    #[test]
    fn variable_length_keys_sort_lexicographically() {
        let (pool, mut t) = setup(true);
        let keys: &[&[u8]] = &[b"a", b"aa", b"ab", b"b", b"ba", b""];
        for (i, k) in keys.iter().enumerate() {
            t.insert(&pool, k, rid(i as u64)).unwrap();
        }
        let all = t.range(&pool, Bound::Unbounded, Bound::Unbounded).unwrap();
        let got: Vec<&[u8]> = all.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(got, vec![&b""[..], b"a", b"aa", b"ab", b"b", b"ba"]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::store::MemStore;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn matches_std_btreemap(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..24), any::<bool>()),
                1..300,
            )
        ) {
            let pool = BufferPool::new(MemStore::new(), 64);
            let mut tree = BTree::create(&pool, true).unwrap();
            let mut model: BTreeMap<Vec<u8>, Rid> = BTreeMap::new();
            let mut next_rid = 0u64;
            for (key, is_insert) in ops {
                if is_insert {
                    let r = Rid::new(PageId(next_rid), 0);
                    next_rid += 1;
                    match tree.insert(&pool, &key, r) {
                        Ok(()) => {
                            prop_assert!(!model.contains_key(&key));
                            model.insert(key, r);
                        }
                        Err(StorageError::DuplicateKey) => {
                            prop_assert!(model.contains_key(&key));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                } else if let Some(&r) = model.get(&key) {
                    prop_assert!(tree.delete(&pool, &key, r).unwrap());
                    model.remove(&key);
                } else {
                    // Deleting a missing key with an arbitrary rid is a no-op.
                    let _ = tree.delete(&pool, &key, Rid::new(PageId(0), 0)).unwrap();
                }
            }
            prop_assert_eq!(tree.len() as usize, model.len());
            let all = tree.range(&pool, Bound::Unbounded, Bound::Unbounded).unwrap();
            let expect: Vec<(Vec<u8>, Rid)> =
                model.iter().map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(all, expect);
        }
    }
}
