//! Slotted-page record layout.
//!
//! A slotted region stores variable-length records inside a fixed byte
//! region. A slot directory grows upward from the region header while record
//! cells grow downward from the end; deleting a record tombstones its slot so
//! record ids remain stable, and the free space is reclaimed by compaction
//! when a later insert needs it.
//!
//! Layout of a region of `L` bytes (all offsets little-endian, relative to
//! the region start):
//!
//! ```text
//! 0..2   slot_count     number of directory entries (live + tombstoned)
//! 2..4   free_start     first byte past the slot directory
//! 4..6   free_end       first byte of the cell area
//! 6..    directory      slot_count entries of {offset: u16, len: u16}
//! ...    free space
//! ...L   cells          record bytes, allocated high-to-low
//! ```
//!
//! A directory entry with `offset == TOMBSTONE` is a deleted slot; its number
//! may be reused by a later insert.

use crate::page::{get_u16, put_u16};

/// Region header size in bytes.
pub const SLOTTED_HEADER: usize = 6;
/// Size of one slot directory entry.
pub const SLOT_ENTRY: usize = 4;
/// Sentinel offset marking a tombstoned slot.
const TOMBSTONE: u16 = u16::MAX;

const OFF_COUNT: usize = 0;
const OFF_FREE_START: usize = 2;
const OFF_FREE_END: usize = 4;

/// A mutable view over a slotted region.
///
/// The region must previously have been initialized with [`Slotted::init`].
pub struct Slotted<'a> {
    buf: &'a mut [u8],
}

impl<'a> Slotted<'a> {
    /// Initialize `buf` as an empty slotted region and return the view.
    pub fn init(buf: &'a mut [u8]) -> Slotted<'a> {
        assert!(buf.len() >= SLOTTED_HEADER + SLOT_ENTRY, "region too small");
        assert!(
            buf.len() <= u16::MAX as usize,
            "region too large for u16 offsets"
        );
        put_u16(buf, OFF_COUNT, 0);
        put_u16(buf, OFF_FREE_START, SLOTTED_HEADER as u16);
        put_u16(buf, OFF_FREE_END, buf.len() as u16);
        Slotted { buf }
    }

    /// Open an already-initialized region.
    pub fn open(buf: &'a mut [u8]) -> Slotted<'a> {
        Slotted { buf }
    }

    /// Number of directory entries (live and tombstoned).
    #[inline]
    pub fn slot_count(&self) -> u16 {
        get_u16(self.buf, OFF_COUNT)
    }

    #[inline]
    fn free_start(&self) -> usize {
        get_u16(self.buf, OFF_FREE_START) as usize
    }

    #[inline]
    fn free_end(&self) -> usize {
        get_u16(self.buf, OFF_FREE_END) as usize
    }

    fn entry(&self, slot: u16) -> (u16, u16) {
        let base = SLOTTED_HEADER + slot as usize * SLOT_ENTRY;
        (get_u16(self.buf, base), get_u16(self.buf, base + 2))
    }

    fn set_entry(&mut self, slot: u16, off: u16, len: u16) {
        let base = SLOTTED_HEADER + slot as usize * SLOT_ENTRY;
        put_u16(self.buf, base, off);
        put_u16(self.buf, base + 2, len);
    }

    /// Bytes of contiguous free space between directory and cells.
    #[inline]
    pub fn contiguous_free(&self) -> usize {
        self.free_end() - self.free_start()
    }

    /// Total reclaimable free space (contiguous plus tombstoned cells).
    pub fn total_free(&self) -> usize {
        let mut free = self.contiguous_free();
        for s in 0..self.slot_count() {
            let (off, len) = self.entry(s);
            if off == TOMBSTONE {
                free += len as usize;
            }
        }
        free
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_count(&self) -> u16 {
        (0..self.slot_count())
            .filter(|&s| self.entry(s).0 != TOMBSTONE)
            .count() as u16
    }

    /// Whether a record of `len` bytes can be inserted (possibly after
    /// compaction).
    pub fn can_insert(&self, len: usize) -> bool {
        if len > u16::MAX as usize {
            return false;
        }
        let need_slot = if self.find_tombstone().is_some() {
            0
        } else {
            SLOT_ENTRY
        };
        self.total_free() >= len + need_slot
    }

    fn find_tombstone(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&s| self.entry(s).0 == TOMBSTONE)
    }

    /// Insert a record, returning its slot number, or `None` if it cannot
    /// fit even after compaction.
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if !self.can_insert(record.len()) {
            return None;
        }
        let reused = self.find_tombstone();
        let need_slot = if reused.is_some() { 0 } else { SLOT_ENTRY };
        if self.contiguous_free() < record.len() + need_slot {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= record.len() + need_slot);
        let new_end = self.free_end() - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        put_u16(self.buf, OFF_FREE_END, new_end as u16);
        let slot = match reused {
            Some(s) => s,
            None => {
                let s = self.slot_count();
                put_u16(self.buf, OFF_COUNT, s + 1);
                put_u16(
                    self.buf,
                    OFF_FREE_START,
                    (self.free_start() + SLOT_ENTRY) as u16,
                );
                s
            }
        };
        self.set_entry(slot, new_end as u16, record.len() as u16);
        Some(slot)
    }

    /// Read a record. Returns `None` for out-of-range or tombstoned slots.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.entry(slot);
        if off == TOMBSTONE {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Tombstone a record. Returns whether a live record was deleted.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (off, len) = self.entry(slot);
        if off == TOMBSTONE {
            return false;
        }
        if off as usize == self.free_end() {
            // Cheap win: the lowest cell can be reclaimed into contiguous
            // free space immediately; record len 0 so it is not
            // double-counted by total_free.
            self.set_entry(slot, TOMBSTONE, 0);
            put_u16(self.buf, OFF_FREE_END, off + len);
        } else {
            // Keep the cell length in the tombstone so total_free counts it.
            self.set_entry(slot, TOMBSTONE, len);
        }
        true
    }

    /// Update a record in place, possibly relocating it within the region.
    /// Returns `false` (leaving the old record intact) if the new bytes
    /// cannot fit.
    pub fn update(&mut self, slot: u16, record: &[u8]) -> bool {
        if slot >= self.slot_count() || record.len() > u16::MAX as usize {
            return false;
        }
        let (off, len) = self.entry(slot);
        if off == TOMBSTONE {
            return false;
        }
        if record.len() <= len as usize {
            // Shrink in place; the tail of the old cell becomes internal
            // fragmentation reclaimed on the next compaction.
            let off = off as usize;
            self.buf[off..off + record.len()].copy_from_slice(record);
            self.set_entry(slot, off as u16, record.len() as u16);
            return true;
        }
        // Grow: tombstone then reinsert into the same slot number.
        self.set_entry(slot, TOMBSTONE, len);
        if !self.can_insert_into_slot(record.len()) {
            self.set_entry(slot, off, len); // roll back
            return false;
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let new_end = self.free_end() - record.len();
        self.buf[new_end..new_end + record.len()].copy_from_slice(record);
        put_u16(self.buf, OFF_FREE_END, new_end as u16);
        self.set_entry(slot, new_end as u16, record.len() as u16);
        true
    }

    /// Like [`Slotted::can_insert`] but for reuse of an existing slot (no new
    /// directory entry needed).
    fn can_insert_into_slot(&self, len: usize) -> bool {
        self.total_free() >= len
    }

    /// Iterate over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Rewrite all live cells to be contiguous at the end of the region,
    /// maximizing contiguous free space. Slot numbers are preserved.
    pub fn compact(&mut self) {
        let count = self.slot_count();
        // Collect live records (slot, bytes) — small vector, page-bounded.
        let mut live: Vec<(u16, Vec<u8>)> = Vec::with_capacity(count as usize);
        for s in 0..count {
            if let Some(r) = self.get(s) {
                live.push((s, r.to_vec()));
            }
        }
        // Tombstoned cells are dropped entirely by the rewrite; zero their
        // recorded lengths so total_free does not double-count them.
        for s in 0..count {
            if self.entry(s).0 == TOMBSTONE {
                self.set_entry(s, TOMBSTONE, 0);
            }
        }
        let mut end = self.buf.len();
        for (s, rec) in &live {
            end -= rec.len();
            self.buf[end..end + rec.len()].copy_from_slice(rec);
            self.set_entry(*s, end as u16, rec.len() as u16);
        }
        put_u16(self.buf, OFF_FREE_END, end as u16);
    }
}

/// A read-only view over a slotted region (usable from shared page borrows,
/// so readers do not dirty buffer-pool frames).
pub struct SlottedRead<'a> {
    buf: &'a [u8],
}

impl<'a> SlottedRead<'a> {
    /// Open an already-initialized region read-only.
    pub fn open(buf: &'a [u8]) -> SlottedRead<'a> {
        SlottedRead { buf }
    }

    /// Number of directory entries (live and tombstoned).
    #[inline]
    pub fn slot_count(&self) -> u16 {
        get_u16(self.buf, OFF_COUNT)
    }

    fn entry(&self, slot: u16) -> (u16, u16) {
        let base = SLOTTED_HEADER + slot as usize * SLOT_ENTRY;
        (get_u16(self.buf, base), get_u16(self.buf, base + 2))
    }

    /// Read a record. Returns `None` for out-of-range or tombstoned slots.
    pub fn get(&self, slot: u16) -> Option<&'a [u8]> {
        let (start, end) = self.cell_range(slot)?;
        Some(&self.buf[start..end])
    }

    /// Byte range of a live record within the region buffer, or `None`
    /// for out-of-range or tombstoned slots. Lets a caller that copied
    /// the region elsewhere describe records as offsets into its copy.
    pub fn cell_range(&self, slot: u16) -> Option<(usize, usize)> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.entry(slot);
        if off == TOMBSTONE {
            return None;
        }
        Some((off as usize, off as usize + len as usize))
    }

    /// Iterate over `(slot, record)` pairs of live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &'a [u8])> + '_ {
        let me = SlottedRead { buf: self.buf };
        (0..self.slot_count()).filter_map(move |s| me.get(s).map(|r| (s, r)))
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_count(&self) -> u16 {
        (0..self.slot_count())
            .filter(|&s| self.entry(s).0 != TOMBSTONE)
            .count() as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(n: usize) -> Vec<u8> {
        vec![0u8; n]
    }

    #[test]
    fn insert_and_get() {
        let mut buf = region(256);
        let mut p = Slotted::init(&mut buf);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"bravo!").unwrap();
        assert_eq!(p.get(a), Some(&b"alpha"[..]));
        assert_eq!(p.get(b), Some(&b"bravo!"[..]));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let mut buf = region(128);
        let p = Slotted::init(&mut buf);
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(99), None);
    }

    #[test]
    fn delete_tombstones_and_reuses_slot() {
        let mut buf = region(256);
        let mut p = Slotted::init(&mut buf);
        let a = p.insert(b"one").unwrap();
        let _b = p.insert(b"two").unwrap();
        assert!(p.delete(a));
        assert_eq!(p.get(a), None);
        assert!(!p.delete(a), "double delete is a no-op");
        let c = p.insert(b"three").unwrap();
        assert_eq!(c, a, "tombstoned slot number is reused");
        assert_eq!(p.get(c), Some(&b"three"[..]));
    }

    #[test]
    fn fills_up_and_rejects_then_accepts_after_delete() {
        let mut buf = region(64); // tiny region
        let mut p = Slotted::init(&mut buf);
        let mut slots = Vec::new();
        while let Some(s) = p.insert(b"0123456789") {
            slots.push(s);
        }
        assert!(!slots.is_empty());
        assert!(p.insert(b"0123456789").is_none());
        assert!(p.delete(slots[0]));
        assert!(p.insert(b"0123456789").is_some());
    }

    #[test]
    fn update_shrink_grow_and_too_big() {
        let mut buf = region(128);
        let mut p = Slotted::init(&mut buf);
        let s = p.insert(b"abcdef").unwrap();
        assert!(p.update(s, b"xy"));
        assert_eq!(p.get(s), Some(&b"xy"[..]));
        assert!(p.update(s, b"0123456789abcdef"));
        assert_eq!(p.get(s), Some(&b"0123456789abcdef"[..]));
        // Way too big: must fail and preserve the old record.
        assert!(!p.update(s, &[0u8; 4096]));
        assert_eq!(p.get(s), Some(&b"0123456789abcdef"[..]));
    }

    #[test]
    fn compaction_recovers_fragmented_space() {
        let mut buf = region(128);
        let mut p = Slotted::init(&mut buf);
        // Fill with alternating records, delete every other one, then insert
        // one record larger than any single hole but smaller than the sum.
        let mut slots = Vec::new();
        while let Some(s) = p.insert(b"12345678") {
            slots.push(s);
        }
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        let free = p.total_free();
        assert!(free >= 16);
        let rec = vec![7u8; 16];
        let got = p.insert(&rec).expect("compaction should make room");
        assert_eq!(p.get(got), Some(&rec[..]));
    }

    #[test]
    fn iter_yields_live_records_in_slot_order() {
        let mut buf = region(256);
        let mut p = Slotted::init(&mut buf);
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b);
        let got: Vec<(u16, Vec<u8>)> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(got, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn empty_record_is_allowed() {
        let mut buf = region(64);
        let mut p = Slotted::init(&mut buf);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
    }

    #[test]
    fn reopen_preserves_contents() {
        let mut buf = region(256);
        {
            let mut p = Slotted::init(&mut buf);
            p.insert(b"persist").unwrap();
        }
        let p = Slotted::open(&mut buf);
        assert_eq!(p.get(0), Some(&b"persist"[..]));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Model-based test: a slotted region behaves like a map slot→bytes.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(Vec<u8>),
        Delete(usize),
        Update(usize, Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..40).prop_map(Op::Insert),
            any::<usize>().prop_map(Op::Delete),
            (
                any::<usize>(),
                proptest::collection::vec(any::<u8>(), 0..40)
            )
                .prop_map(|(i, v)| Op::Update(i, v)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn behaves_like_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
            let mut buf = vec![0u8; 1024];
            let mut page = Slotted::init(&mut buf);
            let mut model: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Insert(bytes) => {
                        if let Some(slot) = page.insert(&bytes) {
                            prop_assert!(!model.contains_key(&slot));
                            model.insert(slot, bytes);
                        } else {
                            // Model agrees it couldn't possibly fit.
                            prop_assert!(!page.can_insert(bytes.len()));
                        }
                    }
                    Op::Delete(i) => {
                        let keys: Vec<u16> = model.keys().copied().collect();
                        if keys.is_empty() { continue; }
                        let slot = keys[i % keys.len()];
                        prop_assert!(page.delete(slot));
                        model.remove(&slot);
                    }
                    Op::Update(i, bytes) => {
                        let keys: Vec<u16> = model.keys().copied().collect();
                        if keys.is_empty() { continue; }
                        let slot = keys[i % keys.len()];
                        if page.update(slot, &bytes) {
                            model.insert(slot, bytes);
                        }
                    }
                }
                // Full read-back check after every op.
                for (slot, bytes) in &model {
                    prop_assert_eq!(page.get(*slot), Some(&bytes[..]));
                }
                prop_assert_eq!(page.live_count() as usize, model.len());
            }
        }
    }
}
