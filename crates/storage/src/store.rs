//! Page stores: where pages physically live.
//!
//! [`PageStore`] abstracts the persistence medium. [`MemStore`] keeps pages
//! in memory (the default for benches and the TUI demos, standing in for the
//! 1983 machine's disk); [`FileStore`] persists pages to a single file and is
//! used by the WAL/recovery tests to demonstrate durability.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Abstract page persistence.
pub trait PageStore {
    /// Allocate a fresh page (zero-filled) and return its id.
    fn allocate(&mut self) -> StorageResult<PageId>;
    /// Read the page into `out`.
    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()>;
    /// Persist the page image.
    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()>;
    /// Return a page to the free list. Its id may be recycled by `allocate`.
    fn free(&mut self, id: PageId) -> StorageResult<()>;
    /// Number of pages ever allocated (including freed ones).
    fn page_count(&self) -> u64;
    /// Flush any buffered writes to the medium.
    fn sync(&mut self) -> StorageResult<()>;
}

/// An in-memory page store.
pub struct MemStore {
    pages: Vec<Option<Page>>,
    free: Vec<u64>,
}

impl MemStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MemStore {
            pages: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Approximate resident bytes (for tests/benches).
    pub fn resident_bytes(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count() * PAGE_SIZE
    }

    /// Rebuild a store from page images restored by a checkpoint loader.
    /// `None` slots are free pages; their ids go back on the free list so
    /// allocation order after restore matches the snapshotted store.
    pub fn from_parts(pages: Vec<Option<Page>>) -> MemStore {
        let free = pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i as u64)
            .collect();
        MemStore { pages, free }
    }
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for MemStore {
    fn allocate(&mut self) -> StorageResult<PageId> {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(Page::zeroed());
            return Ok(PageId(id));
        }
        let id = self.pages.len() as u64;
        self.pages.push(Some(Page::zeroed()));
        Ok(PageId(id))
    }

    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        match self.pages.get(id.0 as usize) {
            Some(Some(p)) => {
                out.as_mut_slice().copy_from_slice(p.as_slice());
                Ok(())
            }
            _ => Err(StorageError::PageNotFound(id.0)),
        }
    }

    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        match self.pages.get_mut(id.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = Some(page.clone());
                Ok(())
            }
            _ => Err(StorageError::PageNotFound(id.0)),
        }
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        match self.pages.get_mut(id.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.free.push(id.0);
                Ok(())
            }
            _ => Err(StorageError::PageNotFound(id.0)),
        }
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> StorageResult<()> {
        Ok(())
    }
}

/// Size of the file header holding store metadata.
const FILE_HEADER: u64 = 64;
const MAGIC: u32 = 0x574F_5732; // "WOW2"
const VERSION: u32 = 2;
/// Sentinel for "no free page" in the free-list chain.
const NIL: u64 = u64::MAX;

/// A file-backed page store.
///
/// Page `i` lives at byte offset `FILE_HEADER + i * PAGE_SIZE`. The header
/// records a magic number, the allocated page count, the head and length of
/// the persistent free list, and an optional metadata blob (used by durable
/// checkpoints to carry the serialized catalog alongside the page images).
///
/// Freed pages form an on-disk chain: the first 8 bytes of a free page hold
/// the id of the next free page, and the header holds the chain head — so
/// pages freed in one process lifetime are recycled in the next, and
/// long-lived worlds stop growing without bound. The two writes a `free`
/// performs (chain pointer, then header) are not atomic; a crash between
/// them leaks that one page, which wastes space but never corrupts data.
///
/// The metadata blob lives after the last page. Allocating a page would
/// overwrite it, so `allocate` invalidates any stored blob; checkpoint
/// writers set it last.
pub struct FileStore {
    file: File,
    next: u64,
    free_head: u64,
    free_len: u64,
    meta_len: u64,
    meta_crc: u64,
}

impl FileStore {
    /// Open (or create) a store at `path`.
    pub fn open(path: &Path) -> StorageResult<FileStore> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let mut store = FileStore {
            file,
            next: 0,
            free_head: NIL,
            free_len: 0,
            meta_len: 0,
            meta_crc: 0,
        };
        if len < FILE_HEADER {
            // Fresh file (or a torn header from a crash during creation —
            // nothing else can be in the file yet): write the header.
            store.file.set_len(0)?;
            store.write_header()?;
        } else {
            let mut header = [0u8; FILE_HEADER as usize];
            store.file.seek(SeekFrom::Start(0))?;
            store.file.read_exact(&mut header)?;
            let magic = u32::from_le_bytes(header[..4].try_into().unwrap());
            if magic != MAGIC {
                return Err(StorageError::Corrupt("bad file-store magic"));
            }
            let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if version != VERSION {
                return Err(StorageError::Corrupt("unsupported file-store version"));
            }
            store.next = u64::from_le_bytes(header[8..16].try_into().unwrap());
            store.free_head = u64::from_le_bytes(header[16..24].try_into().unwrap());
            store.free_len = u64::from_le_bytes(header[24..32].try_into().unwrap());
            store.meta_len = u64::from_le_bytes(header[32..40].try_into().unwrap());
            store.meta_crc = u64::from_le_bytes(header[40..48].try_into().unwrap());
        }
        Ok(store)
    }

    fn write_header(&mut self) -> StorageResult<()> {
        let mut header = [0u8; FILE_HEADER as usize];
        header[..4].copy_from_slice(&MAGIC.to_le_bytes());
        header[4..8].copy_from_slice(&VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&self.next.to_le_bytes());
        header[16..24].copy_from_slice(&self.free_head.to_le_bytes());
        header[24..32].copy_from_slice(&self.free_len.to_le_bytes());
        header[32..40].copy_from_slice(&self.meta_len.to_le_bytes());
        header[40..48].copy_from_slice(&self.meta_crc.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        Ok(())
    }

    fn offset(id: PageId) -> u64 {
        FILE_HEADER + id.0 * PAGE_SIZE as u64
    }

    /// Number of pages currently on the free list.
    pub fn free_count(&self) -> u64 {
        self.free_len
    }

    /// Store a metadata blob after the page region (checksummed; replaces
    /// any previous blob). Checkpoints use this for the serialized catalog.
    pub fn set_meta(&mut self, bytes: &[u8]) -> StorageResult<()> {
        let off = Self::offset(PageId(self.next));
        self.file.set_len(off)?;
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(bytes)?;
        self.meta_len = bytes.len() as u64;
        self.meta_crc = crate::wal::fnv1a(bytes);
        self.write_header()?;
        Ok(())
    }

    /// Read back the metadata blob, if one is stored. A checksum mismatch
    /// (torn or bit-rotted blob) is an error, not silent garbage.
    pub fn get_meta(&mut self) -> StorageResult<Option<Vec<u8>>> {
        if self.meta_len == 0 {
            return Ok(None);
        }
        let off = Self::offset(PageId(self.next));
        let mut buf = vec![0u8; self.meta_len as usize];
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(&mut buf)?;
        if crate::wal::fnv1a(&buf) != self.meta_crc {
            return Err(StorageError::Corrupt("file-store meta checksum mismatch"));
        }
        Ok(Some(buf))
    }
}

impl PageStore for FileStore {
    fn allocate(&mut self) -> StorageResult<PageId> {
        let id = if self.free_head != NIL {
            // Pop the head of the persistent free chain.
            let id = PageId(self.free_head);
            let mut link = [0u8; 8];
            self.file.seek(SeekFrom::Start(Self::offset(id)))?;
            self.file.read_exact(&mut link)?;
            self.free_head = u64::from_le_bytes(link);
            self.free_len -= 1;
            self.write_header()?;
            id
        } else {
            let id = PageId(self.next);
            self.next += 1;
            if self.meta_len != 0 {
                // The new page's bytes land where the blob was.
                self.meta_len = 0;
                self.meta_crc = 0;
            }
            self.write_header()?;
            id
        };
        // Materialize the zero page so reads of fresh pages succeed.
        let zero = Page::zeroed();
        self.file.seek(SeekFrom::Start(Self::offset(id)))?;
        self.file.write_all(zero.as_slice())?;
        Ok(id)
    }

    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        if id.0 >= self.next {
            return Err(StorageError::PageNotFound(id.0));
        }
        self.file.seek(SeekFrom::Start(Self::offset(id)))?;
        self.file.read_exact(out.as_mut_slice())?;
        Ok(())
    }

    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        if id.0 >= self.next {
            return Err(StorageError::PageNotFound(id.0));
        }
        self.file.seek(SeekFrom::Start(Self::offset(id)))?;
        self.file.write_all(page.as_slice())?;
        Ok(())
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        if id.0 >= self.next {
            return Err(StorageError::PageNotFound(id.0));
        }
        // Chain pointer first, header second: a crash in between leaks the
        // page instead of corrupting the chain.
        self.file.seek(SeekFrom::Start(Self::offset(id)))?;
        self.file.write_all(&self.free_head.to_le_bytes())?;
        self.free_head = id.0;
        self.free_len += 1;
        self.write_header()?;
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.next
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_alloc_read_write() {
        let mut s = MemStore::new();
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        assert_ne!(a, b);
        let mut p = Page::zeroed();
        p.as_mut_slice()[0] = 0x5A;
        s.write(a, &p).unwrap();
        let mut out = Page::zeroed();
        s.read(a, &mut out).unwrap();
        assert_eq!(out.as_slice()[0], 0x5A);
        s.read(b, &mut out).unwrap();
        assert_eq!(out.as_slice()[0], 0);
    }

    #[test]
    fn memstore_free_recycles_ids() {
        let mut s = MemStore::new();
        let a = s.allocate().unwrap();
        s.free(a).unwrap();
        let mut out = Page::zeroed();
        assert!(matches!(
            s.read(a, &mut out),
            Err(StorageError::PageNotFound(_))
        ));
        let b = s.allocate().unwrap();
        assert_eq!(a, b, "freed id is recycled");
        // Recycled page must come back zeroed.
        s.read(b, &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0));
    }

    #[test]
    fn memstore_rejects_unallocated() {
        let mut s = MemStore::new();
        let mut out = Page::zeroed();
        assert!(s.read(PageId(3), &mut out).is_err());
        assert!(s.write(PageId(3), &out).is_err());
        assert!(s.free(PageId(3)).is_err());
    }

    #[test]
    fn filestore_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("wow-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        let id;
        {
            let mut s = FileStore::open(&path).unwrap();
            id = s.allocate().unwrap();
            let mut p = Page::zeroed();
            p.as_mut_slice()[100] = 0x77;
            s.write(id, &p).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStore::open(&path).unwrap();
            assert_eq!(s.page_count(), 1);
            let mut out = Page::zeroed();
            s.read(id, &mut out).unwrap();
            assert_eq!(out.as_slice()[100], 0x77);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filestore_free_list_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("wow-store-free-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        let (a, b);
        {
            let mut s = FileStore::open(&path).unwrap();
            a = s.allocate().unwrap();
            b = s.allocate().unwrap();
            s.allocate().unwrap();
            s.free(a).unwrap();
            s.free(b).unwrap();
            assert_eq!(s.free_count(), 2);
            s.sync().unwrap();
        }
        {
            let mut s = FileStore::open(&path).unwrap();
            assert_eq!(s.free_count(), 2, "free list persisted");
            // LIFO chain: b was freed last, so it comes back first.
            assert_eq!(s.allocate().unwrap(), b);
            assert_eq!(s.allocate().unwrap(), a);
            assert_eq!(s.free_count(), 0);
            assert_eq!(s.page_count(), 3, "no growth: freed pages recycled");
            // Recycled pages come back zeroed (the chain pointer is gone).
            let mut out = Page::zeroed();
            s.read(a, &mut out).unwrap();
            assert!(out.as_slice().iter().all(|&x| x == 0));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filestore_meta_round_trips_and_allocate_invalidates() {
        let dir = std::env::temp_dir().join(format!("wow-store-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut s = FileStore::open(&path).unwrap();
            s.allocate().unwrap();
            s.set_meta(b"catalog goes here").unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStore::open(&path).unwrap();
            assert_eq!(
                s.get_meta().unwrap().as_deref(),
                Some(&b"catalog goes here"[..])
            );
            s.allocate().unwrap();
            assert_eq!(s.get_meta().unwrap(), None, "allocate invalidates meta");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filestore_rejects_bad_magic() {
        let dir = std::env::temp_dir().join(format!("wow-store-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.db");
        std::fs::write(&path, vec![9u8; 64]).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filestore_rejects_out_of_range() {
        let dir = std::env::temp_dir().join(format!("wow-store-oor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::open(&path).unwrap();
        let mut out = Page::zeroed();
        assert!(s.read(PageId(0), &mut out).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
