//! Page stores: where pages physically live.
//!
//! [`PageStore`] abstracts the persistence medium. [`MemStore`] keeps pages
//! in memory (the default for benches and the TUI demos, standing in for the
//! 1983 machine's disk); [`FileStore`] persists pages to a single file and is
//! used by the WAL/recovery tests to demonstrate durability.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Abstract page persistence.
pub trait PageStore {
    /// Allocate a fresh page (zero-filled) and return its id.
    fn allocate(&mut self) -> StorageResult<PageId>;
    /// Read the page into `out`.
    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()>;
    /// Persist the page image.
    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()>;
    /// Return a page to the free list. Its id may be recycled by `allocate`.
    fn free(&mut self, id: PageId) -> StorageResult<()>;
    /// Number of pages ever allocated (including freed ones).
    fn page_count(&self) -> u64;
    /// Flush any buffered writes to the medium.
    fn sync(&mut self) -> StorageResult<()>;
}

/// An in-memory page store.
pub struct MemStore {
    pages: Vec<Option<Page>>,
    free: Vec<u64>,
}

impl MemStore {
    /// Create an empty store.
    pub fn new() -> Self {
        MemStore {
            pages: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Approximate resident bytes (for tests/benches).
    pub fn resident_bytes(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count() * PAGE_SIZE
    }
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for MemStore {
    fn allocate(&mut self) -> StorageResult<PageId> {
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(Page::zeroed());
            return Ok(PageId(id));
        }
        let id = self.pages.len() as u64;
        self.pages.push(Some(Page::zeroed()));
        Ok(PageId(id))
    }

    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        match self.pages.get(id.0 as usize) {
            Some(Some(p)) => {
                out.as_mut_slice().copy_from_slice(p.as_slice());
                Ok(())
            }
            _ => Err(StorageError::PageNotFound(id.0)),
        }
    }

    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        match self.pages.get_mut(id.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = Some(page.clone());
                Ok(())
            }
            _ => Err(StorageError::PageNotFound(id.0)),
        }
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        match self.pages.get_mut(id.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.free.push(id.0);
                Ok(())
            }
            _ => Err(StorageError::PageNotFound(id.0)),
        }
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> StorageResult<()> {
        Ok(())
    }
}

/// Size of the file header holding store metadata.
const FILE_HEADER: u64 = 16;
const MAGIC: u32 = 0x574F_5731; // "WOW1"

/// A file-backed page store.
///
/// Page `i` lives at byte offset `FILE_HEADER + i * PAGE_SIZE`. The header
/// records a magic number and the allocated page count. The free list is
/// kept in memory only: pages freed in a previous process lifetime are not
/// recycled, which wastes space but never corrupts data — the trade the
/// original systems of this era also made between checkpoints.
pub struct FileStore {
    file: File,
    next: u64,
    free: Vec<u64>,
}

impl FileStore {
    /// Open (or create) a store at `path`.
    pub fn open(path: &Path) -> StorageResult<FileStore> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let next = if len < FILE_HEADER {
            // Fresh file: write the header.
            let mut header = [0u8; FILE_HEADER as usize];
            header[..4].copy_from_slice(&MAGIC.to_le_bytes());
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header)?;
            0
        } else {
            let mut header = [0u8; FILE_HEADER as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            let magic = u32::from_le_bytes(header[..4].try_into().unwrap());
            if magic != MAGIC {
                return Err(StorageError::Corrupt("bad file-store magic"));
            }
            u64::from_le_bytes(header[8..16].try_into().unwrap())
        };
        Ok(FileStore {
            file,
            next,
            free: Vec::new(),
        })
    }

    fn write_header(&mut self) -> StorageResult<()> {
        let mut header = [0u8; FILE_HEADER as usize];
        header[..4].copy_from_slice(&MAGIC.to_le_bytes());
        header[8..16].copy_from_slice(&self.next.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header)?;
        Ok(())
    }

    fn offset(id: PageId) -> u64 {
        FILE_HEADER + id.0 * PAGE_SIZE as u64
    }
}

impl PageStore for FileStore {
    fn allocate(&mut self) -> StorageResult<PageId> {
        let id = if let Some(id) = self.free.pop() {
            PageId(id)
        } else {
            let id = PageId(self.next);
            self.next += 1;
            self.write_header()?;
            id
        };
        // Materialize the zero page so reads of fresh pages succeed.
        let zero = Page::zeroed();
        self.file.seek(SeekFrom::Start(Self::offset(id)))?;
        self.file.write_all(zero.as_slice())?;
        Ok(id)
    }

    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        if id.0 >= self.next {
            return Err(StorageError::PageNotFound(id.0));
        }
        self.file.seek(SeekFrom::Start(Self::offset(id)))?;
        self.file.read_exact(out.as_mut_slice())?;
        Ok(())
    }

    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        if id.0 >= self.next {
            return Err(StorageError::PageNotFound(id.0));
        }
        self.file.seek(SeekFrom::Start(Self::offset(id)))?;
        self.file.write_all(page.as_slice())?;
        Ok(())
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        if id.0 >= self.next {
            return Err(StorageError::PageNotFound(id.0));
        }
        self.free.push(id.0);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.next
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_alloc_read_write() {
        let mut s = MemStore::new();
        let a = s.allocate().unwrap();
        let b = s.allocate().unwrap();
        assert_ne!(a, b);
        let mut p = Page::zeroed();
        p.as_mut_slice()[0] = 0x5A;
        s.write(a, &p).unwrap();
        let mut out = Page::zeroed();
        s.read(a, &mut out).unwrap();
        assert_eq!(out.as_slice()[0], 0x5A);
        s.read(b, &mut out).unwrap();
        assert_eq!(out.as_slice()[0], 0);
    }

    #[test]
    fn memstore_free_recycles_ids() {
        let mut s = MemStore::new();
        let a = s.allocate().unwrap();
        s.free(a).unwrap();
        let mut out = Page::zeroed();
        assert!(matches!(
            s.read(a, &mut out),
            Err(StorageError::PageNotFound(_))
        ));
        let b = s.allocate().unwrap();
        assert_eq!(a, b, "freed id is recycled");
        // Recycled page must come back zeroed.
        s.read(b, &mut out).unwrap();
        assert!(out.as_slice().iter().all(|&x| x == 0));
    }

    #[test]
    fn memstore_rejects_unallocated() {
        let mut s = MemStore::new();
        let mut out = Page::zeroed();
        assert!(s.read(PageId(3), &mut out).is_err());
        assert!(s.write(PageId(3), &out).is_err());
        assert!(s.free(PageId(3)).is_err());
    }

    #[test]
    fn filestore_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("wow-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        let id;
        {
            let mut s = FileStore::open(&path).unwrap();
            id = s.allocate().unwrap();
            let mut p = Page::zeroed();
            p.as_mut_slice()[100] = 0x77;
            s.write(id, &p).unwrap();
            s.sync().unwrap();
        }
        {
            let mut s = FileStore::open(&path).unwrap();
            assert_eq!(s.page_count(), 1);
            let mut out = Page::zeroed();
            s.read(id, &mut out).unwrap();
            assert_eq!(out.as_slice()[100], 0x77);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filestore_rejects_bad_magic() {
        let dir = std::env::temp_dir().join(format!("wow-store-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.db");
        std::fs::write(&path, vec![9u8; 64]).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn filestore_rejects_out_of_range() {
        let dir = std::env::temp_dir().join(format!("wow-store-oor-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::open(&path).unwrap();
        let mut out = Page::zeroed();
        assert!(s.read(PageId(0), &mut out).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
