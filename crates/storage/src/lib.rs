//! # wow-storage
//!
//! The storage-engine substrate underneath the *Windows on the World* system.
//!
//! A 1983 forms interface sat on top of a full relational storage engine; we
//! build the same stack from scratch:
//!
//! * [`page`] — fixed-size pages and page identifiers.
//! * [`slotted`] — the slotted-page record layout used by heaps and indexes.
//! * [`store`] — page stores: an in-memory store and a file-backed store.
//! * [`buffer`] — a pinning buffer pool with clock eviction.
//! * [`heap`] — heap files of variable-length records addressed by [`rid::Rid`].
//! * [`btree`] — a B+tree over byte-comparable keys supporting range scans.
//! * [`hash_index`] — a bucket-chained hash index for equality lookups.
//! * [`wal`] — a write-ahead log with commit/abort records.
//! * [`recovery`] — replay of committed work after a crash.
//! * [`fault`] — deterministic fault injection for crash-torture tests.
//!
//! Everything operates on raw byte strings; typed encoding/decoding lives one
//! layer up in `wow-rel`.
//!
//! ## Quick tour
//!
//! ```
//! use wow_storage::{store::MemStore, buffer::BufferPool, heap::HeapFile};
//!
//! let store = MemStore::new();
//! let mut pool = BufferPool::new(store, 64);
//! let mut heap = HeapFile::create(&mut pool).unwrap();
//! let rid = heap.insert(&mut pool, b"hello world").unwrap();
//! assert_eq!(heap.get(&mut pool, rid).unwrap().as_deref(), Some(&b"hello world"[..]));
//! ```

pub mod btree;
pub mod buffer;
pub mod error;
pub mod fault;
pub mod hash_index;
pub mod heap;
pub mod page;
pub mod recovery;
pub mod rid;
pub mod slotted;
pub mod store;
pub mod wal;

pub use error::{StorageError, StorageResult};
pub use page::{PageId, PAGE_SIZE};
pub use rid::Rid;
