//! Fixed-size pages and page identifiers.
//!
//! All on-disk structures — heap files, B+trees, hash buckets — are built
//! from [`PAGE_SIZE`]-byte pages addressed by a [`PageId`]. Page ids are
//! allocated by a [`crate::store::PageStore`] and are never reused within a
//! store's lifetime (freed pages go on a free list but keep their id).

use std::fmt;

/// The size of every page, in bytes.
///
/// 8 KiB matches the classic DBMS default and keeps several hundred typical
/// form-sized records per page.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within a page store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel meaning "no page" (used for link terminators in page chains).
    pub const INVALID: PageId = PageId(u64::MAX);

    /// Whether this id is the invalid sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "PageId({})", self.0)
        } else {
            write!(f, "PageId(INVALID)")
        }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An owned page image.
///
/// Pages are heap-allocated boxed arrays so that moving a `Page` moves a
/// pointer, not 8 KiB.
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Construct from an exact-size byte buffer.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), PAGE_SIZE, "page image must be PAGE_SIZE bytes");
        let mut page = Page::zeroed();
        page.bytes.copy_from_slice(bytes);
        page
    }

    /// Immutable view of the raw bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..]
    }

    /// Mutable view of the raw bytes.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes[..]
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            bytes: self.bytes.clone(),
        }
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let used = self.bytes.iter().filter(|&&b| b != 0).count();
        write!(f, "Page({used} non-zero bytes)")
    }
}

/// Read a little-endian `u16` at `off`.
#[inline]
pub(crate) fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

/// Write a little-endian `u16` at `off`.
#[inline]
pub(crate) fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u32` at `off`.
#[allow(dead_code)] // parity with the other widths; used by tests
#[inline]
pub(crate) fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([buf[off], buf[off + 1], buf[off + 2], buf[off + 3]])
}

/// Write a little-endian `u32` at `off`.
#[allow(dead_code)]
#[inline]
pub(crate) fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u64` at `off`.
#[inline]
pub(crate) fn get_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Write a little-endian `u64` at `off`.
#[inline]
pub(crate) fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_is_all_zero() {
        let p = Page::zeroed();
        assert!(p.as_slice().iter().all(|&b| b == 0));
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
    }

    #[test]
    fn from_bytes_round_trips() {
        let mut raw = vec![0u8; PAGE_SIZE];
        raw[0] = 0xAB;
        raw[PAGE_SIZE - 1] = 0xCD;
        let p = Page::from_bytes(&raw);
        assert_eq!(p.as_slice()[0], 0xAB);
        assert_eq!(p.as_slice()[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    #[should_panic(expected = "PAGE_SIZE")]
    fn from_bytes_rejects_wrong_size() {
        let _ = Page::from_bytes(&[0u8; 16]);
    }

    #[test]
    fn invalid_page_id_sentinel() {
        assert!(!PageId::INVALID.is_valid());
        assert!(PageId(0).is_valid());
        assert_eq!(format!("{:?}", PageId::INVALID), "PageId(INVALID)");
        assert_eq!(format!("{}", PageId(3)), "PageId(3)");
    }

    #[test]
    fn endian_helpers_round_trip() {
        let mut buf = [0u8; 32];
        put_u16(&mut buf, 1, 0xBEEF);
        put_u32(&mut buf, 4, 0xDEAD_BEEF);
        put_u64(&mut buf, 10, 0x0123_4567_89AB_CDEF);
        assert_eq!(get_u16(&buf, 1), 0xBEEF);
        assert_eq!(get_u32(&buf, 4), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, 10), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn page_clone_is_independent() {
        let mut a = Page::zeroed();
        a.as_mut_slice()[5] = 7;
        let b = a.clone();
        a.as_mut_slice()[5] = 9;
        assert_eq!(b.as_slice()[5], 7);
    }
}
