//! Deterministic fault injection for durability torture tests.
//!
//! Crash testing is only trustworthy when the same seed reproduces the same
//! failure, so everything here is driven by a [`SplitMix64`] generator seeded
//! from the test plan — never by wall-clock time or OS randomness.
//!
//! Two injection points mirror the two media the engine writes:
//!
//! * [`FaultLog`] — a WAL backend (see [`crate::wal::Wal::with_faults`]) that
//!   splits the log image into a *durable* region (made it through fsync) and
//!   a *buffered* region (written but not yet synced). Appends can short-write
//!   and fail; flushes can fail outright (nothing promoted) or "time out"
//!   (data promoted, acknowledgment lost — the classic indeterminate commit).
//!   [`FaultLog::crash_image`] simulates power loss: the durable bytes plus a
//!   torn prefix of the buffered bytes.
//! * [`FaultStore`] — a [`PageStore`] wrapper that fails page writes and
//!   syncs on seeded countdowns, for exercising checkpoint error paths.

use crate::error::StorageResult;
use crate::page::{Page, PageId};
use crate::store::PageStore;
use std::io;

/// A tiny, high-quality, deterministic PRNG (splitmix64). Not cryptographic;
/// exactly reproducible across platforms for a given seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Equal seeds produce equal sequences forever.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Bernoulli trial with probability `per_mille / 1000`.
    pub fn chance(&mut self, per_mille: u32) -> bool {
        self.below(1000) < per_mille as u64
    }
}

/// What to inject, and how often. Rates are per-mille (0 = never,
/// 1000 = always) so plans stay integer-exact and portable.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// RNG seed; the whole fault schedule is a pure function of it.
    pub seed: u64,
    /// Per-append probability of a short write: a prefix of the frame lands
    /// in the buffered region and the append returns an `io::Error`.
    pub short_write_per_mille: u32,
    /// Per-flush probability of an fsync failure: nothing is promoted to the
    /// durable region and the flush returns an `io::Error`.
    pub fail_flush_per_mille: u32,
    /// Per-flush probability of a delayed fsync: the data *is* promoted, but
    /// the call returns `io::ErrorKind::TimedOut` — the caller cannot know
    /// whether its commit is durable (an indeterminate commit).
    pub late_flush_per_mille: u32,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            short_write_per_mille: 0,
            fail_flush_per_mille: 0,
            late_flush_per_mille: 0,
        }
    }
}

/// Counters of injected faults, for assertions ("this run really did inject
/// torn writes") and for classifying commit outcomes in the torture harness.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Appends that short-wrote and errored.
    pub short_writes: u64,
    /// Flushes that failed without promoting anything.
    pub failed_flushes: u64,
    /// Flushes that promoted but reported a timeout.
    pub late_flushes: u64,
}

/// The fault-injecting WAL backend. See the module docs for the model.
#[derive(Debug)]
pub struct FaultLog {
    durable: Vec<u8>,
    buffered: Vec<u8>,
    rng: SplitMix64,
    plan: FaultPlan,
    stats: FaultStats,
}

fn injected(kind: io::ErrorKind, what: &'static str) -> io::Error {
    io::Error::new(kind, what)
}

impl FaultLog {
    /// A fresh log driven by `plan`.
    pub fn new(plan: FaultPlan) -> FaultLog {
        FaultLog {
            durable: Vec::new(),
            buffered: Vec::new(),
            rng: SplitMix64::new(plan.seed),
            plan,
            stats: FaultStats::default(),
        }
    }

    /// Append one framed record, possibly injecting a short write.
    pub(crate) fn append_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        if self.rng.chance(self.plan.short_write_per_mille) {
            let cut = self.rng.below(frame.len() as u64) as usize;
            self.buffered.extend_from_slice(&frame[..cut]);
            self.stats.short_writes += 1;
            return Err(injected(io::ErrorKind::Other, "injected short write"));
        }
        self.buffered.extend_from_slice(frame);
        Ok(())
    }

    /// Fsync: promote buffered bytes to the durable region, unless a fault
    /// fires first.
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        if self.rng.chance(self.plan.fail_flush_per_mille) {
            self.stats.failed_flushes += 1;
            return Err(injected(io::ErrorKind::Other, "injected fsync failure"));
        }
        if self.rng.chance(self.plan.late_flush_per_mille) {
            self.promote();
            self.stats.late_flushes += 1;
            return Err(injected(
                io::ErrorKind::TimedOut,
                "injected fsync timeout (data durable, ack lost)",
            ));
        }
        self.promote();
        Ok(())
    }

    fn promote(&mut self) {
        self.durable.append(&mut self.buffered);
    }

    /// Everything the running process can read back (the OS page cache view:
    /// durable plus buffered-but-unsynced bytes).
    pub(crate) fn visible(&self) -> Vec<u8> {
        let mut out = self.durable.clone();
        out.extend_from_slice(&self.buffered);
        out
    }

    /// Simulate power loss: durable bytes survive intact; of the buffered
    /// bytes, a seeded prefix (possibly empty, possibly mid-record — a torn
    /// tail) happens to have reached the platter.
    pub fn crash_image(&mut self) -> Vec<u8> {
        let mut img = self.durable.clone();
        if !self.buffered.is_empty() {
            let cut = self.rng.below(self.buffered.len() as u64 + 1) as usize;
            img.extend_from_slice(&self.buffered[..cut]);
        }
        img
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Drop all content (WAL reset after a checkpoint). Never injects.
    pub(crate) fn clear(&mut self) {
        self.durable.clear();
        self.buffered.clear();
    }
}

/// Countdown-based fault plan for a [`FaultStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreFaultPlan {
    /// Fail the Nth page write (1-based; `0` = never).
    pub fail_write_at: u64,
    /// Fail the Nth sync (1-based; `0` = never).
    pub fail_sync_at: u64,
}

/// A [`PageStore`] wrapper that injects `io::Error`s at exact, deterministic
/// points — checkpoint code must surface (not swallow) them.
pub struct FaultStore<S: PageStore> {
    inner: S,
    plan: StoreFaultPlan,
    writes: u64,
    syncs: u64,
}

impl<S: PageStore> FaultStore<S> {
    /// Wrap `inner` with the given countdown plan.
    pub fn new(inner: S, plan: StoreFaultPlan) -> FaultStore<S> {
        FaultStore {
            inner,
            plan,
            writes: 0,
            syncs: 0,
        }
    }

    /// Unwrap the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PageStore> PageStore for FaultStore<S> {
    fn allocate(&mut self) -> StorageResult<PageId> {
        self.inner.allocate()
    }

    fn read(&mut self, id: PageId, out: &mut Page) -> StorageResult<()> {
        self.inner.read(id, out)
    }

    fn write(&mut self, id: PageId, page: &Page) -> StorageResult<()> {
        self.writes += 1;
        if self.plan.fail_write_at != 0 && self.writes == self.plan.fail_write_at {
            return Err(injected(io::ErrorKind::Other, "injected page-write failure").into());
        }
        self.inner.write(id, page)
    }

    fn free(&mut self, id: PageId) -> StorageResult<()> {
        self.inner.free(id)
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.syncs += 1;
        if self.plan.fail_sync_at != 0 && self.syncs == self.plan.fail_sync_at {
            return Err(injected(io::ErrorKind::Other, "injected sync failure").into());
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chance_rates_are_sane() {
        let mut r = SplitMix64::new(7);
        assert!((0..100).all(|_| !r.chance(0)));
        assert!((0..100).all(|_| r.chance(1000)));
        let hits = (0..10_000).filter(|_| r.chance(100)).count();
        assert!((700..1300).contains(&hits), "≈10% rate, got {hits}/10000");
    }

    #[test]
    fn quiet_log_promotes_on_flush() {
        let mut log = FaultLog::new(FaultPlan::quiet(1));
        log.append_frame(b"abc").unwrap();
        log.flush().unwrap();
        assert_eq!(log.visible(), b"abc");
        // After flush, the whole image is durable: crash loses nothing.
        assert_eq!(log.crash_image(), b"abc");
        assert_eq!(log.stats(), FaultStats::default());
    }

    #[test]
    fn failed_flush_leaves_nothing_durable() {
        let plan = FaultPlan {
            seed: 3,
            short_write_per_mille: 0,
            fail_flush_per_mille: 1000,
            late_flush_per_mille: 0,
        };
        let mut log = FaultLog::new(plan);
        log.append_frame(b"abcdef").unwrap();
        assert!(log.flush().is_err());
        assert_eq!(log.stats().failed_flushes, 1);
        // Crash image is a (possibly empty) prefix of the buffered bytes.
        let img = log.crash_image();
        assert!(b"abcdef".starts_with(&img[..]));
    }

    #[test]
    fn late_flush_promotes_but_errors() {
        let plan = FaultPlan {
            seed: 3,
            short_write_per_mille: 0,
            fail_flush_per_mille: 0,
            late_flush_per_mille: 1000,
        };
        let mut log = FaultLog::new(plan);
        log.append_frame(b"xyz").unwrap();
        let err = log.flush().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(log.crash_image(), b"xyz", "data landed despite the error");
        assert_eq!(log.stats().late_flushes, 1);
    }

    #[test]
    fn short_write_is_a_strict_prefix() {
        let plan = FaultPlan {
            seed: 11,
            short_write_per_mille: 1000,
            fail_flush_per_mille: 0,
            late_flush_per_mille: 0,
        };
        let mut log = FaultLog::new(plan);
        assert!(log.append_frame(b"0123456789").is_err());
        assert_eq!(log.stats().short_writes, 1);
        let img = log.visible();
        assert!(img.len() < 10);
        assert!(b"0123456789".starts_with(&img[..]));
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan {
            seed: 99,
            short_write_per_mille: 300,
            fail_flush_per_mille: 200,
            late_flush_per_mille: 100,
        };
        let run = |plan: FaultPlan| {
            let mut log = FaultLog::new(plan);
            let mut outcomes = Vec::new();
            for i in 0..50u8 {
                outcomes.push(log.append_frame(&[i; 16]).is_ok());
                outcomes.push(log.flush().is_ok());
            }
            (outcomes, log.crash_image(), log.stats())
        };
        assert_eq!(run(plan), run(plan));
    }

    #[test]
    fn fault_store_fails_on_countdown() {
        let mut s = FaultStore::new(
            MemStore::new(),
            StoreFaultPlan {
                fail_write_at: 2,
                fail_sync_at: 1,
            },
        );
        let a = s.allocate().unwrap();
        let p = Page::zeroed();
        s.write(a, &p).unwrap();
        assert!(s.write(a, &p).is_err(), "second write fails");
        s.write(a, &p).unwrap();
        assert!(s.sync().is_err(), "first sync fails");
        s.sync().unwrap();
    }
}
