//! Crash recovery: replay the committed prefix of a WAL.
//!
//! The engine follows a **no-steal / redo-only** discipline at the logical
//! level: after a crash, the database state is reconstructed by replaying
//! every operation belonging to a *committed* transaction, in log order,
//! against a fresh store. Operations of unfinished or aborted transactions
//! are discarded. This is the simplest recovery protocol that yields
//! correct durability semantics and matches the checkpoint-and-replay
//! designs of the era.
//!
//! Replay is expressed as a visitor so the relational layer can rebuild its
//! own heap files and indexes without this crate knowing about tuples.

use crate::error::StorageResult;
use crate::wal::{LogRecord, TxnId, Wal};
use std::collections::HashSet;

/// Summary of a recovery analysis pass.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose commit record was found.
    pub committed: Vec<TxnId>,
    /// Transactions that began but neither committed nor aborted (losers).
    pub in_flight: Vec<TxnId>,
    /// Transactions explicitly aborted.
    pub aborted: Vec<TxnId>,
    /// Number of data operations replayed.
    pub replayed_ops: u64,
    /// Number of data operations skipped (loser/aborted transactions).
    pub skipped_ops: u64,
}

/// Analysis pass: classify every transaction in the log.
pub fn analyze(records: &[LogRecord]) -> RecoveryReport {
    let mut begun: Vec<TxnId> = Vec::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    for rec in records {
        match rec {
            LogRecord::Begin { txn } => {
                if !begun.contains(txn) {
                    begun.push(*txn);
                }
            }
            LogRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            LogRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            _ => {
                // Data records may appear without an explicit Begin (single-
                // statement transactions); treat first sight as begin.
                let txn = rec.txn();
                if !begun.contains(&txn) {
                    begun.push(txn);
                }
            }
        }
    }
    let mut report = RecoveryReport::default();
    for txn in begun {
        if committed.contains(&txn) {
            report.committed.push(txn);
        } else if aborted.contains(&txn) {
            report.aborted.push(txn);
        } else {
            report.in_flight.push(txn);
        }
    }
    report
}

/// Redo pass: invoke `apply` for every data operation of every committed
/// transaction, in log order. Returns the filled-in [`RecoveryReport`].
pub fn replay(
    records: &[LogRecord],
    mut apply: impl FnMut(&LogRecord) -> StorageResult<()>,
) -> StorageResult<RecoveryReport> {
    let mut report = analyze(records);
    let committed: HashSet<TxnId> = report.committed.iter().copied().collect();
    for rec in records {
        match rec {
            LogRecord::Insert { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Ddl { txn, .. } => {
                if committed.contains(txn) {
                    apply(rec)?;
                    report.replayed_ops += 1;
                } else {
                    report.skipped_ops += 1;
                }
            }
            _ => {}
        }
    }
    Ok(report)
}

/// Convenience: read a WAL and replay it in one step.
pub fn recover(
    wal: &mut Wal,
    apply: impl FnMut(&LogRecord) -> StorageResult<()>,
) -> StorageResult<RecoveryReport> {
    let records: Vec<LogRecord> = wal.read_all()?.into_iter().map(|(_, r)| r).collect();
    replay(&records, apply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;
    use crate::rid::Rid;

    fn ins(txn: TxnId, n: u8) -> LogRecord {
        LogRecord::Insert {
            txn,
            table: 1,
            rid: Rid::new(PageId(n as u64), 0),
            bytes: vec![n],
        }
    }

    #[test]
    fn committed_ops_replay_in_order() {
        let log = vec![
            LogRecord::Begin { txn: 1 },
            ins(1, 10),
            LogRecord::Begin { txn: 2 },
            ins(2, 20),
            ins(1, 11),
            LogRecord::Commit { txn: 1 },
            ins(2, 21),
            // txn 2 never commits
        ];
        let mut applied = Vec::new();
        let report = replay(&log, |rec| {
            if let LogRecord::Insert { bytes, .. } = rec {
                applied.push(bytes[0]);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(applied, vec![10, 11]);
        assert_eq!(report.replayed_ops, 2);
        assert_eq!(report.skipped_ops, 2);
        assert_eq!(report.committed, vec![1]);
        assert_eq!(report.in_flight, vec![2]);
    }

    #[test]
    fn aborted_transactions_are_skipped() {
        let log = vec![
            LogRecord::Begin { txn: 5 },
            ins(5, 50),
            LogRecord::Abort { txn: 5 },
        ];
        let report = replay(&log, |_| panic!("nothing should replay")).unwrap();
        assert_eq!(report.aborted, vec![5]);
        assert_eq!(report.skipped_ops, 1);
    }

    #[test]
    fn implicit_begin_is_recognized() {
        // Single-statement transactions may skip the Begin record.
        let log = vec![ins(9, 1), LogRecord::Commit { txn: 9 }];
        let report = analyze(&log);
        assert_eq!(report.committed, vec![9]);
    }

    #[test]
    fn empty_log_recovers_to_empty() {
        let mut wal = Wal::in_memory();
        let report = recover(&mut wal, |_| Ok(())).unwrap();
        assert_eq!(report, RecoveryReport::default());
    }

    #[test]
    fn end_to_end_crash_simulation() {
        // Write interleaved txns, "crash" by truncating the log image, then
        // recover and confirm exactly the committed prefix survives.
        let mut wal = Wal::in_memory();
        wal.append(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.append(&ins(1, 1)).unwrap();
        wal.append(&LogRecord::Commit { txn: 1 }).unwrap();
        wal.append(&LogRecord::Begin { txn: 2 }).unwrap();
        wal.append(&ins(2, 2)).unwrap();
        let cut = wal.raw().unwrap().len(); // crash before txn 2's commit
        wal.append(&LogRecord::Commit { txn: 2 }).unwrap();

        let truncated = &wal.raw().unwrap()[..cut];
        let records: Vec<LogRecord> = Wal::parse(truncated)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let mut survived = Vec::new();
        replay(&records, |rec| {
            if let LogRecord::Insert { bytes, .. } = rec {
                survived.push(bytes[0]);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(survived, vec![1], "only txn 1 committed before the crash");
    }
}
