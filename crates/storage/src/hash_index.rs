//! A bucket-chained hash index for equality lookups.
//!
//! The forms interface resolves key lookups (e.g. "fetch the row the cursor
//! is on" or an exact-match query-by-form field) through either a B+tree or
//! this hash index; the optimizer picks the hash index for pure equality
//! predicates because it needs no descent.
//!
//! Structure: a meta page holds a directory of `B` bucket-head page ids.
//! Each bucket is a chain of pages of `(key, rid)` entries. Keys hash with
//! FNV-1a. Duplicates are allowed (uniqueness, when needed, is enforced by
//! the table layer which probes before insert).
//!
//! Bucket page layout:
//!
//! ```text
//! 0..8   next page in chain (PageId, INVALID at end)
//! 8..10  entry count (u16)
//! 10..   entries {klen: u16, key, rid: 10 bytes}
//! ```

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{get_u16, get_u64, put_u16, put_u64, PageId, PAGE_SIZE};
use crate::rid::Rid;
use crate::store::PageStore;

/// Default number of buckets.
pub const DEFAULT_BUCKETS: usize = 128;
/// Maximum number of buckets (directory must fit on the meta page).
pub const MAX_BUCKETS: usize = (PAGE_SIZE - 16) / 8;
/// Maximum key length accepted by the index.
pub const MAX_KEY: usize = 1024;

const PAGE_HEADER: usize = 10;
const ENTRY_OVERHEAD: usize = 2 + 10;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A hash index rooted at a meta page.
#[derive(Clone)]
pub struct HashIndex {
    meta: PageId,
    buckets: Vec<PageId>,
    count: u64,
}

impl HashIndex {
    /// Create an empty index with `buckets` buckets.
    pub fn create<S: PageStore>(pool: &BufferPool<S>, buckets: usize) -> StorageResult<HashIndex> {
        assert!((1..=MAX_BUCKETS).contains(&buckets));
        let meta = pool.allocate_page()?;
        let heads = vec![PageId::INVALID; buckets];
        pool.with_page_mut(meta, |p| {
            let b = p.as_mut_slice();
            put_u64(b, 0, buckets as u64);
            put_u64(b, 8, 0); // entry count
            for (i, h) in heads.iter().enumerate() {
                put_u64(b, 16 + i * 8, h.0);
            }
        })?;
        Ok(HashIndex {
            meta,
            buckets: heads,
            count: 0,
        })
    }

    /// Open an existing index rooted at `meta`.
    pub fn open<S: PageStore>(pool: &BufferPool<S>, meta: PageId) -> StorageResult<HashIndex> {
        let (buckets, count) = pool.with_page(meta, |p| {
            let b = p.as_slice();
            let n = get_u64(b, 0) as usize;
            let count = get_u64(b, 8);
            let heads: Vec<PageId> = (0..n).map(|i| PageId(get_u64(b, 16 + i * 8))).collect();
            (heads, count)
        })?;
        Ok(HashIndex {
            meta,
            buckets,
            count,
        })
    }

    /// The meta page id (persist this to reopen the index).
    pub fn meta_page(&self) -> PageId {
        self.meta
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn bucket_of(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.buckets.len() as u64) as usize
    }

    fn persist_meta<S: PageStore>(&self, pool: &BufferPool<S>) -> StorageResult<()> {
        let count = self.count;
        let heads = self.buckets.clone();
        pool.with_page_mut(self.meta, |p| {
            let b = p.as_mut_slice();
            put_u64(b, 8, count);
            for (i, h) in heads.iter().enumerate() {
                put_u64(b, 16 + i * 8, h.0);
            }
        })
    }

    /// Insert an entry (duplicates allowed).
    pub fn insert<S: PageStore>(
        &mut self,
        pool: &BufferPool<S>,
        key: &[u8],
        rid: Rid,
    ) -> StorageResult<()> {
        if key.len() > MAX_KEY {
            return Err(StorageError::RecordTooLarge {
                size: key.len(),
                max: MAX_KEY,
            });
        }
        let b = self.bucket_of(key);
        let need = ENTRY_OVERHEAD + key.len();
        // Walk the chain looking for a page with room.
        let mut pid = self.buckets[b];
        let mut prev = PageId::INVALID;
        while pid.is_valid() {
            let inserted = pool.with_page_mut(pid, |p| {
                let buf = p.as_mut_slice();
                let count = get_u16(buf, 8) as usize;
                let used = Self::used_bytes(buf, count);
                if used + need > PAGE_SIZE {
                    return false;
                }
                Self::write_entry(buf, used, key, rid);
                put_u16(buf, 8, (count + 1) as u16);
                true
            })?;
            if inserted {
                self.count += 1;
                return self.persist_meta(pool);
            }
            prev = pid;
            pid = pool.with_page(pid, |p| PageId(get_u64(p.as_slice(), 0)))?;
        }
        // Chain full (or empty): add a page.
        let new = pool.allocate_page()?;
        pool.with_page_mut(new, |p| {
            let buf = p.as_mut_slice();
            put_u64(buf, 0, PageId::INVALID.0);
            put_u16(buf, 8, 1);
            Self::write_entry(buf, PAGE_HEADER, key, rid);
        })?;
        if prev.is_valid() {
            pool.with_page_mut(prev, |p| put_u64(p.as_mut_slice(), 0, new.0))?;
        } else {
            self.buckets[b] = new;
        }
        self.count += 1;
        self.persist_meta(pool)
    }

    fn used_bytes(buf: &[u8], count: usize) -> usize {
        let mut off = PAGE_HEADER;
        for _ in 0..count {
            let klen = get_u16(buf, off) as usize;
            off += 2 + klen + 10;
        }
        off
    }

    fn write_entry(buf: &mut [u8], off: usize, key: &[u8], rid: Rid) {
        put_u16(buf, off, key.len() as u16);
        buf[off + 2..off + 2 + key.len()].copy_from_slice(key);
        buf[off + 2 + key.len()..off + 2 + key.len() + 10].copy_from_slice(&rid.to_bytes());
    }

    fn for_each_entry<S: PageStore>(
        pool: &BufferPool<S>,
        head: PageId,
        mut f: impl FnMut(&[u8], Rid),
    ) -> StorageResult<()> {
        let mut pid = head;
        while pid.is_valid() {
            let next = pool.with_page(pid, |p| {
                let buf = p.as_slice();
                let count = get_u16(buf, 8) as usize;
                let mut off = PAGE_HEADER;
                for _ in 0..count {
                    let klen = get_u16(buf, off) as usize;
                    off += 2;
                    let key = &buf[off..off + klen];
                    off += klen;
                    let rid = Rid::from_bytes(&buf[off..off + 10]).expect("10-byte rid");
                    off += 10;
                    f(key, rid);
                }
                PageId(get_u64(buf, 0))
            })?;
            pid = next;
        }
        Ok(())
    }

    /// All rids stored under `key`.
    pub fn lookup<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        key: &[u8],
    ) -> StorageResult<Vec<Rid>> {
        let head = self.buckets[self.bucket_of(key)];
        let mut out = Vec::new();
        Self::for_each_entry(pool, head, |k, rid| {
            if k == key {
                out.push(rid);
            }
        })?;
        Ok(out)
    }

    /// Whether any entry exists under `key` — the existence probe used by
    /// delta propagation (walks one bucket chain, allocates nothing).
    pub fn contains<S: PageStore>(&self, pool: &BufferPool<S>, key: &[u8]) -> StorageResult<bool> {
        let head = self.buckets[self.bucket_of(key)];
        let mut found = false;
        Self::for_each_entry(pool, head, |k, _| {
            if k == key {
                found = true;
            }
        })?;
        Ok(found)
    }

    /// Remove the entry `(key, rid)`. Returns whether it existed.
    ///
    /// Removal shifts the page's remaining entries over the hole; ordering
    /// within a bucket is incidental and hash lookups never depend on it.
    pub fn delete<S: PageStore>(
        &mut self,
        pool: &BufferPool<S>,
        key: &[u8],
        rid: Rid,
    ) -> StorageResult<bool> {
        let b = self.bucket_of(key);
        let mut pid = self.buckets[b];
        while pid.is_valid() {
            let (removed, next) = pool.with_page_mut(pid, |p| {
                let buf = p.as_mut_slice();
                let count = get_u16(buf, 8) as usize;
                // Locate the entry.
                let mut off = PAGE_HEADER;
                let mut found: Option<(usize, usize)> = None; // (offset, total len)
                for _ in 0..count {
                    let klen = get_u16(buf, off) as usize;
                    let total = 2 + klen + 10;
                    let k = &buf[off + 2..off + 2 + klen];
                    let r = Rid::from_bytes(&buf[off + 2 + klen..off + total]).unwrap();
                    if k == key && r == rid {
                        found = Some((off, total));
                        break;
                    }
                    off += total;
                }
                let next = PageId(get_u64(buf, 0));
                match found {
                    None => (false, next),
                    Some((at, len)) => {
                        let used = Self::used_bytes(buf, count);
                        // Shift the tail left over the hole.
                        buf.copy_within(at + len..used, at);
                        put_u16(buf, 8, (count - 1) as u16);
                        (true, next)
                    }
                }
            })?;
            if removed {
                self.count -= 1;
                self.persist_meta(pool)?;
                return Ok(true);
            }
            pid = next;
        }
        Ok(false)
    }

    /// Free every page of the index.
    pub fn destroy<S: PageStore>(self, pool: &BufferPool<S>) -> StorageResult<()> {
        for head in &self.buckets {
            let mut pid = *head;
            while pid.is_valid() {
                let next = pool.with_page(pid, |p| PageId(get_u64(p.as_slice(), 0)))?;
                pool.free_page(pid)?;
                pid = next;
            }
        }
        pool.free_page(self.meta)
    }

    /// Longest bucket chain, in pages (for stats/tests).
    pub fn max_chain_pages<S: PageStore>(&self, pool: &BufferPool<S>) -> StorageResult<usize> {
        let mut max = 0;
        for head in &self.buckets {
            let mut len = 0;
            let mut pid = *head;
            while pid.is_valid() {
                len += 1;
                pid = pool.with_page(pid, |p| PageId(get_u64(p.as_slice(), 0)))?;
            }
            max = max.max(len);
        }
        Ok(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn setup(buckets: usize) -> (BufferPool<MemStore>, HashIndex) {
        let pool = BufferPool::new(MemStore::new(), 64);
        let idx = HashIndex::create(&pool, buckets).unwrap();
        (pool, idx)
    }

    fn rid(n: u64) -> Rid {
        Rid::new(PageId(n), 0)
    }

    #[test]
    fn insert_lookup_delete() {
        let (pool, mut idx) = setup(DEFAULT_BUCKETS);
        idx.insert(&pool, b"alice", rid(1)).unwrap();
        idx.insert(&pool, b"bob", rid(2)).unwrap();
        assert_eq!(idx.lookup(&pool, b"alice").unwrap(), vec![rid(1)]);
        assert_eq!(idx.lookup(&pool, b"carol").unwrap(), Vec::<Rid>::new());
        assert!(idx.delete(&pool, b"alice", rid(1)).unwrap());
        assert!(!idx.delete(&pool, b"alice", rid(1)).unwrap());
        assert_eq!(idx.lookup(&pool, b"alice").unwrap(), Vec::<Rid>::new());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn duplicates_are_kept_and_deleted_individually() {
        let (pool, mut idx) = setup(8);
        for i in 0..20 {
            idx.insert(&pool, b"dup", rid(i)).unwrap();
        }
        assert_eq!(idx.lookup(&pool, b"dup").unwrap().len(), 20);
        assert!(idx.delete(&pool, b"dup", rid(11)).unwrap());
        let left = idx.lookup(&pool, b"dup").unwrap();
        assert_eq!(left.len(), 19);
        assert!(!left.contains(&rid(11)));
    }

    #[test]
    fn single_bucket_chains_pages() {
        // Force everything into one bucket to exercise chain growth.
        let (pool, mut idx) = setup(1);
        let n = 2000u64;
        for i in 0..n {
            let key = format!("key-{i:06}");
            idx.insert(&pool, key.as_bytes(), rid(i)).unwrap();
        }
        assert!(idx.max_chain_pages(&pool).unwrap() > 1);
        for i in (0..n).step_by(97) {
            let key = format!("key-{i:06}");
            assert_eq!(idx.lookup(&pool, key.as_bytes()).unwrap(), vec![rid(i)]);
        }
    }

    #[test]
    fn many_keys_spread_over_buckets() {
        let (pool, mut idx) = setup(DEFAULT_BUCKETS);
        let n = 5000u64;
        for i in 0..n {
            idx.insert(&pool, &i.to_be_bytes(), rid(i)).unwrap();
        }
        assert_eq!(idx.len(), n);
        for probe in [0u64, 1, 999, 2500, n - 1] {
            assert_eq!(
                idx.lookup(&pool, &probe.to_be_bytes()).unwrap(),
                vec![rid(probe)]
            );
        }
        // A decent hash spreads: no chain should be wildly long.
        assert!(idx.max_chain_pages(&pool).unwrap() <= 4);
    }

    #[test]
    fn delete_from_middle_of_page_keeps_rest() {
        let (pool, mut idx) = setup(1);
        for i in 0..10u64 {
            idx.insert(&pool, format!("k{i}").as_bytes(), rid(i))
                .unwrap();
        }
        assert!(idx.delete(&pool, b"k4", rid(4)).unwrap());
        for i in 0..10u64 {
            let want: Vec<Rid> = if i == 4 { vec![] } else { vec![rid(i)] };
            assert_eq!(idx.lookup(&pool, format!("k{i}").as_bytes()).unwrap(), want);
        }
    }

    #[test]
    fn reopen_preserves_index() {
        let pool = BufferPool::new(MemStore::new(), 64);
        let meta;
        {
            let mut idx = HashIndex::create(&pool, 16).unwrap();
            meta = idx.meta_page();
            for i in 0..500u64 {
                idx.insert(&pool, &i.to_be_bytes(), rid(i)).unwrap();
            }
        }
        let idx = HashIndex::open(&pool, meta).unwrap();
        assert_eq!(idx.len(), 500);
        assert_eq!(
            idx.lookup(&pool, &42u64.to_be_bytes()).unwrap(),
            vec![rid(42)]
        );
    }

    #[test]
    fn oversized_key_is_rejected() {
        let (pool, mut idx) = setup(4);
        let big = vec![0u8; MAX_KEY + 1];
        assert!(idx.insert(&pool, &big, rid(0)).is_err());
    }

    #[test]
    fn empty_key_works() {
        let (pool, mut idx) = setup(4);
        idx.insert(&pool, b"", rid(9)).unwrap();
        assert_eq!(idx.lookup(&pool, b"").unwrap(), vec![rid(9)]);
    }
}
