//! Heap files: unordered collections of variable-length records.
//!
//! A heap file is a chain of slotted pages. Records are addressed by
//! [`Rid`]s which stay stable for the record's lifetime: an update that no
//! longer fits on its page *moves* the bytes to another page and leaves a
//! forwarding stub at the original rid, exactly as classic slotted-page
//! engines do, so indexes and open windows never observe a rid change.
//!
//! Page layout: bytes `0..8` hold the next-page link; the rest is a
//! [`crate::slotted`] region. Every stored cell carries a one-byte tag:
//!
//! * `DATA` — a plain record.
//! * `FWD` — a 10-byte rid of the record's current home.
//! * `MOVED` — a record that lives here but whose logical rid is elsewhere;
//!   scans skip it (the stub's rid is the logical one).

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::{get_u64, put_u64, PageId, PAGE_SIZE};
use crate::rid::Rid;
use crate::slotted::{Slotted, SlottedRead, SLOTTED_HEADER, SLOT_ENTRY};
use crate::store::PageStore;

const TAG_DATA: u8 = 0;
const TAG_FWD: u8 = 1;
const TAG_MOVED: u8 = 2;

/// Byte offset of the slotted region within a heap page.
const REGION_OFF: usize = 8;
/// Meta-page field offsets.
const META_FIRST: usize = 0;
const META_LAST: usize = 8;
const META_COUNT: usize = 16;

/// Largest record a heap file accepts.
pub const MAX_RECORD: usize = PAGE_SIZE - REGION_OFF - SLOTTED_HEADER - SLOT_ENTRY - 1;

/// Readahead window of [`HeapFile::scan_page`]: how many upcoming data
/// pages each page-at-a-time scan step prefetches into the buffer pool.
pub const SCAN_READAHEAD: usize = 8;

/// A heap file rooted at a meta page.
///
/// The struct holds an in-memory mirror of the page chain (rebuilt on
/// [`HeapFile::open`]) and a free-space cache used for first-fit placement.
#[derive(Clone)]
pub struct HeapFile {
    meta: PageId,
    pages: Vec<PageId>,
    /// Cached contiguous-free estimate per data page (same order as `pages`).
    free_hint: Vec<u16>,
    count: u64,
}

impl HeapFile {
    /// Create a new, empty heap file. Returns a handle rooted at a fresh
    /// meta page (persist the meta page id in your catalog).
    pub fn create<S: PageStore>(pool: &BufferPool<S>) -> StorageResult<HeapFile> {
        let meta = pool.allocate_page()?;
        pool.with_page_mut(meta, |p| {
            let b = p.as_mut_slice();
            put_u64(b, META_FIRST, PageId::INVALID.0);
            put_u64(b, META_LAST, PageId::INVALID.0);
            put_u64(b, META_COUNT, 0);
        })?;
        Ok(HeapFile {
            meta,
            pages: Vec::new(),
            free_hint: Vec::new(),
            count: 0,
        })
    }

    /// Open an existing heap file rooted at `meta`, rebuilding the in-memory
    /// page list by walking the chain.
    pub fn open<S: PageStore>(pool: &BufferPool<S>, meta: PageId) -> StorageResult<HeapFile> {
        let (first, count) = pool.with_page(meta, |p| {
            (
                PageId(get_u64(p.as_slice(), META_FIRST)),
                get_u64(p.as_slice(), META_COUNT),
            )
        })?;
        let mut pages = Vec::new();
        let mut free_hint = Vec::new();
        let mut cur = first;
        while cur.is_valid() {
            let (next, free) = pool.with_page_mut(cur, |p| {
                let next = PageId(get_u64(p.as_slice(), 0));
                let region = &mut p.as_mut_slice()[REGION_OFF..];
                let s = Slotted::open(region);
                (next, s.total_free() as u16)
            })?;
            pages.push(cur);
            free_hint.push(free);
            cur = next;
        }
        Ok(HeapFile {
            meta,
            pages,
            free_hint,
            count,
        })
    }

    /// The meta page id (persist this to reopen the file).
    pub fn meta_page(&self) -> PageId {
        self.meta
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the heap holds no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of data pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn persist_count<S: PageStore>(&self, pool: &BufferPool<S>) -> StorageResult<()> {
        let count = self.count;
        pool.with_page_mut(self.meta, |p| put_u64(p.as_mut_slice(), META_COUNT, count))
    }

    /// Append a new data page to the chain.
    fn grow<S: PageStore>(&mut self, pool: &BufferPool<S>) -> StorageResult<PageId> {
        let new = pool.allocate_page()?;
        pool.with_page_mut(new, |p| {
            put_u64(p.as_mut_slice(), 0, PageId::INVALID.0);
            Slotted::init(&mut p.as_mut_slice()[REGION_OFF..]);
        })?;
        if let Some(&last) = self.pages.last() {
            pool.with_page_mut(last, |p| put_u64(p.as_mut_slice(), 0, new.0))?;
            pool.with_page_mut(self.meta, |p| put_u64(p.as_mut_slice(), META_LAST, new.0))?;
        } else {
            pool.with_page_mut(self.meta, |p| {
                put_u64(p.as_mut_slice(), META_FIRST, new.0);
                put_u64(p.as_mut_slice(), META_LAST, new.0);
            })?;
        }
        self.pages.push(new);
        self.free_hint
            .push((PAGE_SIZE - REGION_OFF - SLOTTED_HEADER) as u16);
        Ok(new)
    }

    /// Place a tagged cell somewhere in the file; returns its physical rid.
    fn place<S: PageStore>(&mut self, pool: &BufferPool<S>, cell: &[u8]) -> StorageResult<Rid> {
        // First fit over the free-space cache, preferring the last page
        // (append locality), then any page with room, then grow.
        let need = cell.len() + SLOT_ENTRY;
        let candidate = self
            .pages
            .len()
            .checked_sub(1)
            .filter(|&i| self.free_hint[i] as usize >= need)
            .or_else(|| (0..self.pages.len()).find(|&i| self.free_hint[i] as usize >= need));
        let idx = match candidate {
            Some(i) => i,
            None => {
                self.grow(pool)?;
                self.pages.len() - 1
            }
        };
        let pid = self.pages[idx];
        let slot = pool.with_page_mut(pid, |p| {
            let mut s = Slotted::open(&mut p.as_mut_slice()[REGION_OFF..]);
            let slot = s.insert(cell);
            (slot, s.total_free() as u16)
        })?;
        let (slot, free) = slot;
        self.free_hint[idx] = free;
        match slot {
            Some(slot) => Ok(Rid::new(pid, slot)),
            None => {
                // Free hint was stale (fragmentation); grow and retry once.
                let pid = self.grow(pool)?;
                let idx = self.pages.len() - 1;
                let (slot, free) = pool.with_page_mut(pid, |p| {
                    let mut s = Slotted::open(&mut p.as_mut_slice()[REGION_OFF..]);
                    let slot = s.insert(cell);
                    (slot, s.total_free() as u16)
                })?;
                self.free_hint[idx] = free;
                slot.map(|slot| Rid::new(pid, slot))
                    .ok_or(StorageError::RecordTooLarge {
                        size: cell.len(),
                        max: MAX_RECORD,
                    })
            }
        }
    }

    /// Insert a record and return its (stable) rid.
    pub fn insert<S: PageStore>(
        &mut self,
        pool: &BufferPool<S>,
        record: &[u8],
    ) -> StorageResult<Rid> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: MAX_RECORD,
            });
        }
        let mut cell = Vec::with_capacity(record.len() + 1);
        cell.push(TAG_DATA);
        cell.extend_from_slice(record);
        let rid = self.place(pool, &cell)?;
        self.count += 1;
        self.persist_count(pool)?;
        Ok(rid)
    }

    /// Read the raw cell at a physical rid.
    fn read_cell<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        rid: Rid,
    ) -> StorageResult<Option<Vec<u8>>> {
        if !self.pages.contains(&rid.page) {
            return Ok(None);
        }
        pool.with_page(rid.page, |p| {
            let s = SlottedRead::open(&p.as_slice()[REGION_OFF..]);
            s.get(rid.slot).map(|c| c.to_vec())
        })
    }

    /// Fetch a record by rid, following at most one forwarding stub.
    pub fn get<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        rid: Rid,
    ) -> StorageResult<Option<Vec<u8>>> {
        let Some(cell) = self.read_cell(pool, rid)? else {
            return Ok(None);
        };
        match cell.first() {
            Some(&TAG_DATA) => Ok(Some(cell[1..].to_vec())),
            Some(&TAG_MOVED) => Ok(None), // physical home of a moved record: not a logical rid
            Some(&TAG_FWD) => {
                let target =
                    Rid::from_bytes(&cell[1..]).ok_or(StorageError::Corrupt("bad fwd rid"))?;
                let Some(cell) = self.read_cell(pool, target)? else {
                    return Err(StorageError::Corrupt("dangling forward"));
                };
                match cell.first() {
                    Some(&TAG_MOVED) => Ok(Some(cell[1..].to_vec())),
                    _ => Err(StorageError::Corrupt("forward target not MOVED")),
                }
            }
            _ => Err(StorageError::Corrupt("bad record tag")),
        }
    }

    /// Delete a record by rid. Returns whether a record was deleted.
    pub fn delete<S: PageStore>(&mut self, pool: &BufferPool<S>, rid: Rid) -> StorageResult<bool> {
        let Some(cell) = self.read_cell(pool, rid)? else {
            return Ok(false);
        };
        let target = match cell.first() {
            Some(&TAG_DATA) => None,
            Some(&TAG_FWD) => {
                Some(Rid::from_bytes(&cell[1..]).ok_or(StorageError::Corrupt("bad fwd rid"))?)
            }
            Some(&TAG_MOVED) => return Ok(false),
            _ => return Err(StorageError::Corrupt("bad record tag")),
        };
        self.delete_cell(pool, rid)?;
        if let Some(t) = target {
            self.delete_cell(pool, t)?;
        }
        self.count -= 1;
        self.persist_count(pool)?;
        Ok(true)
    }

    fn delete_cell<S: PageStore>(&mut self, pool: &BufferPool<S>, rid: Rid) -> StorageResult<()> {
        let free = pool.with_page_mut(rid.page, |p| {
            let mut s = Slotted::open(&mut p.as_mut_slice()[REGION_OFF..]);
            s.delete(rid.slot);
            s.total_free() as u16
        })?;
        if let Some(idx) = self.pages.iter().position(|&p| p == rid.page) {
            self.free_hint[idx] = free;
        }
        Ok(())
    }

    /// Update the record at `rid` in place (the rid remains valid even if
    /// the bytes physically move). Returns whether the record existed.
    pub fn update<S: PageStore>(
        &mut self,
        pool: &BufferPool<S>,
        rid: Rid,
        record: &[u8],
    ) -> StorageResult<bool> {
        if record.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: record.len(),
                max: MAX_RECORD,
            });
        }
        let Some(cell) = self.read_cell(pool, rid)? else {
            return Ok(false);
        };
        let (home, old_target) = match cell.first() {
            Some(&TAG_DATA) => (rid, None),
            Some(&TAG_FWD) => {
                let t = Rid::from_bytes(&cell[1..]).ok_or(StorageError::Corrupt("bad fwd rid"))?;
                (rid, Some(t))
            }
            Some(&TAG_MOVED) => return Ok(false),
            _ => return Err(StorageError::Corrupt("bad record tag")),
        };
        // Try to write the new bytes at the record's current physical home.
        let phys = old_target.unwrap_or(home);
        let tag = if old_target.is_some() {
            TAG_MOVED
        } else {
            TAG_DATA
        };
        let mut cell = Vec::with_capacity(record.len() + 1);
        cell.push(tag);
        cell.extend_from_slice(record);
        let fitted = pool.with_page_mut(phys.page, |p| {
            let mut s = Slotted::open(&mut p.as_mut_slice()[REGION_OFF..]);
            let ok = s.update(phys.slot, &cell);
            (ok, s.total_free() as u16)
        })?;
        let (fitted, free) = fitted;
        if let Some(idx) = self.pages.iter().position(|&p| p == phys.page) {
            self.free_hint[idx] = free;
        }
        if fitted {
            return Ok(true);
        }
        // Doesn't fit: move the record elsewhere and leave/refresh the stub.
        let mut moved = Vec::with_capacity(record.len() + 1);
        moved.push(TAG_MOVED);
        moved.extend_from_slice(record);
        let new_phys = self.place(pool, &moved)?;
        // Point the home slot at the new location.
        let mut stub = Vec::with_capacity(11);
        stub.push(TAG_FWD);
        stub.extend_from_slice(&new_phys.to_bytes());
        let stub_ok = pool.with_page_mut(home.page, |p| {
            let mut s = Slotted::open(&mut p.as_mut_slice()[REGION_OFF..]);
            s.update(home.slot, &stub)
        })?;
        if !stub_ok {
            // A stub is 11 bytes; the home slot previously held >= 1 byte.
            // Slotted::update can still fail under extreme fragmentation, in
            // which case compaction inside update would have handled it; if
            // we get here the page is corrupt.
            return Err(StorageError::Corrupt("could not write forward stub"));
        }
        // Drop the old MOVED copy if the record had already been moved once.
        if let Some(t) = old_target {
            self.delete_cell(pool, t)?;
        }
        Ok(true)
    }

    /// Scan all records in chain/slot order, invoking `f(rid, bytes)` for
    /// each live record. The rid passed is the *logical* rid (forwarding
    /// stubs are resolved; moved bodies are skipped).
    pub fn scan<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        mut f: impl FnMut(Rid, &[u8]),
    ) -> StorageResult<()> {
        let mut page_idx = 0;
        while self.scan_page(pool, page_idx, &mut f)? {
            page_idx += 1;
        }
        Ok(())
    }

    /// Scan the records of one data page (by position in the page chain),
    /// invoking `f` exactly as [`HeapFile::scan`] does. Returns `false`
    /// when `page_idx` is past the end of the chain.
    ///
    /// Page-at-a-time access is by construction sequential, so each call
    /// issues readahead for the next [`SCAN_READAHEAD`] pages of the chain
    /// through [`BufferPool::prefetch`].
    pub fn scan_page<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        page_idx: usize,
        mut f: impl FnMut(Rid, &[u8]),
    ) -> StorageResult<bool> {
        if page_idx >= self.pages.len() {
            return Ok(false);
        }
        let ahead = (page_idx + 1 + SCAN_READAHEAD).min(self.pages.len());
        pool.prefetch(&self.pages[page_idx + 1..ahead])?;
        let pid = self.pages[page_idx];
        // One copy of the whole slotted region instead of one `Vec` per
        // cell: records reach `f` as slices into this buffer, so a full
        // page scan costs a single allocation rather than one per row.
        // (The copy itself is what lets `read_cell` re-enter the pool for
        // forwarding stubs while we iterate.)
        let region: Vec<u8> = pool.with_page(pid, |p| p.as_slice()[REGION_OFF..].to_vec())?;
        let s = SlottedRead::open(&region);
        for (slot, cell) in s.iter() {
            match cell.first() {
                Some(&TAG_DATA) => f(Rid::new(pid, slot), &cell[1..]),
                Some(&TAG_FWD) => {
                    let t =
                        Rid::from_bytes(&cell[1..]).ok_or(StorageError::Corrupt("bad fwd rid"))?;
                    let body = self
                        .read_cell(pool, t)?
                        .ok_or(StorageError::Corrupt("dangling forward"))?;
                    f(Rid::new(pid, slot), &body[1..]);
                }
                Some(&TAG_MOVED) => {} // surfaced via its stub
                _ => return Err(StorageError::Corrupt("bad record tag")),
            }
        }
        Ok(true)
    }

    /// Scan one data page into a caller-owned arena: every live record's
    /// bytes (record tag stripped) are described by a `(start, end)` pair
    /// pushed onto `bounds`, in the same order [`HeapFile::scan_page`]
    /// visits them. The whole slotted region is appended to `arena` with a
    /// single copy and records become offsets into that copy, so a page
    /// scan costs no per-record allocation or memcpy — this is the batch
    /// executor's scan primitive, which drains the arena at its own
    /// (batch-sized) pace and reuses both buffers across pages. Forwarded
    /// record bodies land after the region copy but their bounds keep slot
    /// order. Returns `false` once `page_idx` is past the end of the chain.
    pub fn scan_page_into<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
        page_idx: usize,
        arena: &mut Vec<u8>,
        bounds: &mut Vec<(u32, u32)>,
    ) -> StorageResult<bool> {
        if page_idx >= self.pages.len() {
            return Ok(false);
        }
        let ahead = (page_idx + 1 + SCAN_READAHEAD).min(self.pages.len());
        pool.prefetch(&self.pages[page_idx + 1..ahead])?;
        let pid = self.pages[page_idx];
        let base = arena.len();
        pool.with_page(pid, |p| {
            arena.extend_from_slice(&p.as_slice()[REGION_OFF..])
        })?;
        // Forwarding stubs to resolve once the region borrow ends: the
        // body bytes must be appended to `arena`, which is frozen while
        // `SlottedRead` borrows it. `(bounds index, target rid)` pairs.
        let mut fwds: Vec<(usize, Rid)> = Vec::new();
        {
            let region = &arena[base..];
            let s = SlottedRead::open(region);
            for slot in 0..s.slot_count() {
                let Some((start, end)) = s.cell_range(slot) else {
                    continue;
                };
                match region.get(start) {
                    Some(&TAG_DATA) => {
                        bounds.push(((base + start + 1) as u32, (base + end) as u32))
                    }
                    Some(&TAG_FWD) => {
                        Rid::from_bytes(&region[start + 1..end])
                            .map(|t| fwds.push((bounds.len(), t)))
                            .ok_or(StorageError::Corrupt("bad fwd rid"))?;
                        bounds.push((0, 0)); // placeholder, patched below
                    }
                    Some(&TAG_MOVED) => {} // surfaced via its stub
                    _ => return Err(StorageError::Corrupt("bad record tag")),
                }
            }
        }
        for (bi, t) in fwds {
            let body = self
                .read_cell(pool, t)?
                .ok_or(StorageError::Corrupt("dangling forward"))?;
            let start = arena.len() as u32;
            arena.extend_from_slice(&body[1..]);
            bounds[bi] = (start, arena.len() as u32);
        }
        Ok(true)
    }

    /// Collect every `(rid, record)` pair (convenience over [`HeapFile::scan`]).
    pub fn scan_all<S: PageStore>(
        &self,
        pool: &BufferPool<S>,
    ) -> StorageResult<Vec<(Rid, Vec<u8>)>> {
        let mut out = Vec::with_capacity(self.count as usize);
        self.scan(pool, |rid, rec| out.push((rid, rec.to_vec())))?;
        Ok(out)
    }

    /// Free every page of the heap (drop the relation).
    pub fn destroy<S: PageStore>(self, pool: &BufferPool<S>) -> StorageResult<()> {
        for pid in self.pages {
            pool.free_page(pid)?;
        }
        pool.free_page(self.meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn setup() -> (BufferPool<MemStore>, HeapFile) {
        let pool = BufferPool::new(MemStore::new(), 32);
        let heap = HeapFile::create(&pool).unwrap();
        (pool, heap)
    }

    #[test]
    fn insert_get_round_trip() {
        let (pool, mut heap) = setup();
        let rid = heap.insert(&pool, b"hello").unwrap();
        assert_eq!(
            heap.get(&pool, rid).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn get_missing_is_none() {
        let (pool, heap) = setup();
        assert_eq!(heap.get(&pool, Rid::new(PageId(999), 0)).unwrap(), None);
    }

    #[test]
    fn delete_removes_record() {
        let (pool, mut heap) = setup();
        let rid = heap.insert(&pool, b"x").unwrap();
        assert!(heap.delete(&pool, rid).unwrap());
        assert_eq!(heap.get(&pool, rid).unwrap(), None);
        assert!(!heap.delete(&pool, rid).unwrap());
        assert_eq!(heap.len(), 0);
    }

    #[test]
    fn update_in_place_and_grow() {
        let (pool, mut heap) = setup();
        let rid = heap.insert(&pool, b"short").unwrap();
        assert!(heap.update(&pool, rid, b"a bit longer record").unwrap());
        assert_eq!(
            heap.get(&pool, rid).unwrap().as_deref(),
            Some(&b"a bit longer record"[..])
        );
    }

    #[test]
    fn update_that_moves_keeps_rid_stable() {
        let (pool, mut heap) = setup();
        // Fill a page almost completely so the grown record cannot stay.
        let filler = vec![b'f'; 700];
        let mut rids = Vec::new();
        for _ in 0..11 {
            rids.push(heap.insert(&pool, &filler).unwrap());
        }
        let victim = rids[5];
        let big = vec![b'B'; 3000];
        assert!(heap.update(&pool, victim, &big).unwrap());
        assert_eq!(heap.get(&pool, victim).unwrap().as_deref(), Some(&big[..]));
        // And update it again, even bigger, exercising stub refresh.
        let bigger = vec![b'C'; 6000];
        assert!(heap.update(&pool, victim, &bigger).unwrap());
        assert_eq!(
            heap.get(&pool, victim).unwrap().as_deref(),
            Some(&bigger[..])
        );
        // Other records untouched.
        assert_eq!(
            heap.get(&pool, rids[4]).unwrap().as_deref(),
            Some(&filler[..])
        );
    }

    #[test]
    fn scan_sees_each_live_record_once() {
        let (pool, mut heap) = setup();
        let filler = vec![b'f'; 700];
        let mut rids = Vec::new();
        for _ in 0..11 {
            rids.push(heap.insert(&pool, &filler).unwrap());
        }
        // Move one record via growth, delete another.
        let big = vec![b'B'; 3000];
        heap.update(&pool, rids[3], &big).unwrap();
        heap.delete(&pool, rids[7]).unwrap();
        let all = heap.scan_all(&pool).unwrap();
        assert_eq!(all.len(), 10);
        let got_rids: Vec<Rid> = all.iter().map(|(r, _)| *r).collect();
        assert!(
            got_rids.contains(&rids[3]),
            "moved record keeps logical rid"
        );
        assert!(!got_rids.contains(&rids[7]));
        let moved = all.iter().find(|(r, _)| *r == rids[3]).unwrap();
        assert_eq!(moved.1, big);
    }

    #[test]
    fn records_spanning_many_pages() {
        let (pool, mut heap) = setup();
        let n = 2000;
        let mut rids = Vec::new();
        for i in 0..n {
            let rec = format!("record-{i:05}");
            rids.push(heap.insert(&pool, rec.as_bytes()).unwrap());
        }
        assert!(heap.page_count() > 1);
        assert_eq!(heap.len(), n);
        for (i, rid) in rids.iter().enumerate() {
            let rec = heap.get(&pool, *rid).unwrap().unwrap();
            assert_eq!(rec, format!("record-{i:05}").as_bytes());
        }
        let mut seen = 0;
        heap.scan(&pool, |_, _| seen += 1).unwrap();
        assert_eq!(seen, n as usize);
    }

    #[test]
    fn scan_page_matches_scan_and_prefetches() {
        // Pool smaller than the heap so the scan cannot run entirely from
        // resident frames.
        let pool = BufferPool::new(MemStore::new(), 12);
        let mut heap = HeapFile::create(&pool).unwrap();
        for i in 0..12000 {
            heap.insert(&pool, format!("record-{i:05}").as_bytes())
                .unwrap();
        }
        assert!(heap.page_count() > SCAN_READAHEAD);
        pool.reset_stats();
        let mut paged = Vec::new();
        let mut idx = 0;
        while heap
            .scan_page(&pool, idx, |rid, rec| paged.push((rid, rec.to_vec())))
            .unwrap()
        {
            idx += 1;
        }
        assert_eq!(idx, heap.page_count());
        let stats = pool.stats();
        assert!(stats.prefetches > 0, "sequential scan issues readahead");
        assert!(
            stats.prefetch_hits > 0,
            "readahead pages are then read: {stats:?}"
        );
        let whole = heap.scan_all(&pool).unwrap();
        assert_eq!(paged, whole);
    }

    #[test]
    fn scan_page_into_matches_scan_page_with_forwards_and_deletes() {
        let (pool, mut heap) = setup();
        let filler = vec![b'f'; 700];
        let mut rids = Vec::new();
        for _ in 0..40 {
            rids.push(heap.insert(&pool, &filler).unwrap());
        }
        // Grow one record past its page's free space so it moves and
        // leaves a forwarding stub; tombstone another.
        let big = vec![b'x'; 4000];
        heap.update(&pool, rids[3], &big).unwrap();
        heap.delete(&pool, rids[7]).unwrap();
        assert!(heap.page_count() > 1);

        let mut via_f = Vec::new();
        let mut idx = 0;
        while heap
            .scan_page(&pool, idx, |_, rec| via_f.push(rec.to_vec()))
            .unwrap()
        {
            idx += 1;
        }
        let mut arena = Vec::new();
        let mut bounds = Vec::new();
        let mut pages_seen = 0;
        while heap
            .scan_page_into(&pool, pages_seen, &mut arena, &mut bounds)
            .unwrap()
        {
            pages_seen += 1;
        }
        assert_eq!(pages_seen, idx);
        let via_arena: Vec<Vec<u8>> = bounds
            .iter()
            .map(|&(s, e)| arena[s as usize..e as usize].to_vec())
            .collect();
        assert_eq!(via_arena, via_f);
    }

    #[test]
    fn reopen_preserves_records() {
        let pool = BufferPool::new(MemStore::new(), 32);
        let meta;
        let rid;
        {
            let mut heap = HeapFile::create(&pool).unwrap();
            meta = heap.meta_page();
            rid = heap.insert(&pool, b"durable").unwrap();
            for i in 0..500 {
                heap.insert(&pool, format!("r{i}").as_bytes()).unwrap();
            }
        }
        let heap = HeapFile::open(&pool, meta).unwrap();
        assert_eq!(heap.len(), 501);
        assert_eq!(
            heap.get(&pool, rid).unwrap().as_deref(),
            Some(&b"durable"[..])
        );
    }

    #[test]
    fn too_large_record_is_rejected() {
        let (pool, mut heap) = setup();
        let huge = vec![0u8; MAX_RECORD + 1];
        assert!(matches!(
            heap.insert(&pool, &huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
        // Max-size record is accepted.
        let max = vec![1u8; MAX_RECORD];
        let rid = heap.insert(&pool, &max).unwrap();
        assert_eq!(heap.get(&pool, rid).unwrap().unwrap().len(), MAX_RECORD);
    }

    #[test]
    fn destroy_frees_pages() {
        let (pool, mut heap) = setup();
        for i in 0..100 {
            heap.insert(&pool, format!("row{i}").as_bytes()).unwrap();
        }
        let meta = heap.meta_page();
        heap.destroy(&pool).unwrap();
        assert!(HeapFile::open(&pool, meta).is_err());
    }

    #[test]
    fn interleaved_insert_delete_reuses_space() {
        let (pool, mut heap) = setup();
        let rec = vec![b'x'; 100];
        let mut live = Vec::new();
        for round in 0..20 {
            for _ in 0..50 {
                live.push(heap.insert(&pool, &rec).unwrap());
            }
            // Delete half.
            for _ in 0..25 {
                let rid = live.remove(round % live.len().max(1));
                heap.delete(&pool, rid).unwrap();
            }
        }
        assert_eq!(heap.len() as usize, live.len());
        // Space reuse: page count stays bounded well below no-reuse worst case.
        assert!(heap.page_count() < 40, "pages = {}", heap.page_count());
    }
}
