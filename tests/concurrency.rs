//! Concurrency integration: real OS threads hammering one `World` behind a
//! mutex, plus cooperative multi-session interleavings with the lock
//! manager. (The 1983 system multiplexed terminals onto one CPU; threads
//! over a mutex model the same serializable interleaving.)

use parking_lot::Mutex;
use std::sync::Arc;
use wow::core::config::WorldConfig;
use wow::core::locks::LockMode;
use wow::core::world::World;
use wow::rel::value::Value;
use wow::workload::script::mixed_script;
use wow::workload::suppliers::{build_world, SuppliersConfig};
use wow::workload::DetRng;

fn shared_world(locking: bool) -> World {
    build_world(
        WorldConfig {
            locking,
            ..WorldConfig::default()
        },
        &SuppliersConfig {
            suppliers: 40,
            parts: 20,
            shipments: 200,
            seed: 61,
        },
    )
}

#[test]
fn threads_share_one_world_without_corruption() {
    let world = Arc::new(Mutex::new(shared_world(true)));
    // Open one window per "user" up front.
    let mut windows = Vec::new();
    {
        let mut w = world.lock();
        for _ in 0..4 {
            let s = w.open_session();
            windows.push((s, w.open_window(s, "shipments", None).unwrap()));
        }
    }
    let handles: Vec<_> = windows
        .into_iter()
        .enumerate()
        .map(|(i, (_s, win))| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let mut rng = DetRng::new(100 + i as u64);
                let ops = mixed_script(&mut rng, 120, 0.25, 3);
                let mut done = 0u64;
                for op in &ops {
                    let mut w = world.lock();
                    match wow::workload::script::apply(&mut w, win, op) {
                        Ok(()) => done += 1,
                        Err(e) => panic!("scripted op failed: {e}"),
                    }
                }
                done
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 480);
    // Integrity: the shipment table still has 200 rows, every row decodes,
    // the pk index agrees with the heap.
    let mut w = world.lock();
    let rows = w.db_mut().run("RETRIEVE (n = COUNT(sp.spid))").unwrap();
    assert_eq!(rows.tuples[0].values[0], Value::Int(200));
    for spid in [0i64, 57, 199] {
        let hits = w
            .db_mut()
            .index_lookup("pk_shipment", &[Value::Int(spid)])
            .unwrap();
        assert_eq!(hits.len(), 1, "pk index intact for spid {spid}");
    }
    assert!(w.stats.commits > 0);
}

#[test]
fn scripted_sessions_see_each_others_commits() {
    let mut world = shared_world(true);
    let a = world.open_session();
    let b = world.open_session();
    let win_a = world.open_window(a, "suppliers", None).unwrap();
    let win_b = world.open_window(b, "suppliers", None).unwrap();
    // A edits the first supplier's status; B's window refreshes.
    world.enter_edit(win_a).unwrap();
    world.window_mut(win_a).unwrap().form.set_text(3, "77");
    world.commit(win_a).unwrap();
    let seen_by_b = world.current_row(win_b).unwrap().unwrap();
    assert_eq!(seen_by_b.values[3], Value::Int(77));
}

#[test]
fn lock_contention_under_explicit_transactions() {
    let mut world = shared_world(true);
    let a = world.open_session();
    let b = world.open_session();
    assert!(world.try_lock(a, "shipment", LockMode::Exclusive));
    // B's whole edit path is denied while A holds the relation.
    let win_b = world.open_window(b, "shipments", None).unwrap();
    world.enter_edit(win_b).unwrap();
    world.window_mut(win_b).unwrap().form.set_text(3, "1");
    let err = world.commit(win_b).unwrap_err();
    assert!(err.to_string().contains("locked by session"), "{err}");
    // B cancels, A releases, B retries fine.
    world.cancel_mode(win_b).unwrap();
    world.release_locks(a);
    world.enter_edit(win_b).unwrap();
    world.window_mut(win_b).unwrap().form.set_text(3, "2");
    world.commit(win_b).unwrap();
}

#[test]
fn deadlock_resolution_lets_the_survivor_finish() {
    let mut world = shared_world(true);
    let a = world.open_session();
    let b = world.open_session();
    assert!(world.try_lock(a, "supplier", LockMode::Exclusive));
    assert!(world.try_lock(b, "part", LockMode::Exclusive));
    assert!(!world.try_lock(a, "part", LockMode::Exclusive)); // a waits
    assert!(!world.try_lock(b, "supplier", LockMode::Exclusive)); // deadlock detected
    assert_eq!(world.locks().deadlocks, 1);
    // The detected party (b) gives up everything; a finishes.
    world.release_locks(b);
    assert!(world.try_lock(a, "part", LockMode::Exclusive));
    world.release_locks(a);
}

#[test]
fn without_locking_races_lose_updates_with_locking_they_dont() {
    // A distilled version of Table 5, asserted rather than printed.
    for locking in [true, false] {
        let mut world = shared_world(locking);
        let a = world.open_session();
        let b = world.open_session();
        let info = world.db().catalog().table("shipment").unwrap().clone();
        let (rid, start) = {
            let rows = world.db_mut().scan_table_raw(info.id).unwrap();
            let (rid, row) = rows[0].clone();
            let q = match row.values[3] {
                Value::Int(q) => q,
                _ => unreachable!(),
            };
            (rid, q)
        };
        let rounds = 50i64;
        let read_qty = |world: &mut World| -> i64 {
            match world
                .db_mut()
                .get_row(info.id, rid)
                .unwrap()
                .unwrap()
                .values[3]
            {
                Value::Int(q) => q,
                _ => unreachable!(),
            }
        };
        for _ in 0..rounds {
            assert!(world.try_lock(a, "shipment", LockMode::Exclusive) || !locking);
            let a_read = read_qty(&mut world);
            let b_granted = world.try_lock(b, "shipment", LockMode::Exclusive);
            let b_early = read_qty(&mut world);
            let mut row = world.db_mut().get_row(info.id, rid).unwrap().unwrap();
            row.values[3] = Value::Int(a_read + 1);
            world
                .db_mut()
                .update_rid("shipment", rid, row.values)
                .unwrap();
            world.release_locks(a);
            let b_read = if b_granted {
                b_early
            } else {
                assert!(world.try_lock(b, "shipment", LockMode::Exclusive));
                read_qty(&mut world)
            };
            let mut row = world.db_mut().get_row(info.id, rid).unwrap().unwrap();
            row.values[3] = Value::Int(b_read + 1);
            world
                .db_mut()
                .update_rid("shipment", rid, row.values)
                .unwrap();
            world.release_locks(b);
        }
        let final_qty = read_qty(&mut world);
        if locking {
            assert_eq!(final_qty, start + 2 * rounds, "strict 2PL loses nothing");
        } else {
            assert_eq!(
                final_qty,
                start + rounds,
                "the unlocked interleaving loses exactly one increment per round"
            );
        }
    }
}
