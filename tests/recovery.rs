//! Durability integration: windows commit through a WAL-enabled database,
//! the process "crashes", and replay reconstructs exactly the committed
//! state — including the half-finished transaction that must vanish.

use wow::core::config::WorldConfig;
use wow::core::world::World;
use wow::rel::db::Database;
use wow::rel::schema::{Column, Schema};
use wow::rel::types::DataType;
use wow::rel::value::Value;
use wow::storage::wal::Wal;

fn schema_ddl(db: &mut Database) {
    db.create_table(
        "account",
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::not_null("owner", DataType::Text),
            Column::new("balance", DataType::Int),
        ]),
        &["id"],
    )
    .unwrap();
}

#[test]
fn committed_window_edits_survive_a_crash() {
    // A world over a WAL-enabled database.
    let mut db = Database::in_memory();
    db.attach_wal(Wal::in_memory());
    schema_ddl(&mut db);
    for i in 0..20 {
        db.insert(
            "account",
            vec![
                Value::Int(i),
                Value::text(format!("owner-{i}")),
                Value::Int(100),
            ],
        )
        .unwrap();
    }
    let mut world = World::with_db(WorldConfig::default(), db);
    world
        .define_view(
            "accounts",
            "RANGE OF a IS account RETRIEVE (a.id, a.owner, a.balance)",
        )
        .unwrap();
    let s = world.open_session();
    let win = world.open_window(s, "accounts", None).unwrap();

    // Committed work: two edits and a delete through the window.
    world.enter_edit(win).unwrap();
    world.window_mut(win).unwrap().form.set_text(2, "500");
    world.commit(win).unwrap();
    world.browse_next(win).unwrap();
    world.enter_edit(win).unwrap();
    world.window_mut(win).unwrap().form.set_text(2, "750");
    world.commit(win).unwrap();
    world.browse_next(win).unwrap();
    world.delete_current(win).unwrap(); // account 2 gone

    // Uncommitted work: an explicit transaction that never commits.
    world.db_mut().begin().unwrap();
    world
        .db_mut()
        .insert(
            "account",
            vec![Value::Int(999), Value::text("ghost"), Value::Int(1)],
        )
        .unwrap();
    // -- crash: the WAL is all that survives --------------------------------
    let mut wal = world.db_mut().take_wal().unwrap();
    drop(world);

    // Replay starts from *empty*: the WAL carries the CREATE TABLE, so
    // recovery reconstructs schema and data alike.
    let mut recovered = Database::in_memory();
    recovered.replay_wal(&mut wal).unwrap();

    let tid = recovered.catalog().table("account").unwrap().id;
    assert_eq!(
        recovered.row_count(tid),
        19,
        "20 seeded, 1 deleted, ghost gone"
    );
    recovered.declare_range("a", "account").unwrap();
    let check = |db: &mut Database, id: i64| -> Option<i64> {
        let rows = db
            .run(&format!("RETRIEVE (a.balance) WHERE a.id = {id}"))
            .unwrap();
        rows.tuples.first().map(|t| match t.values[0] {
            Value::Int(b) => b,
            _ => panic!(),
        })
    };
    assert_eq!(check(&mut recovered, 0), Some(500));
    assert_eq!(check(&mut recovered, 1), Some(750));
    assert_eq!(
        check(&mut recovered, 2),
        None,
        "deleted account stays deleted"
    );
    assert_eq!(
        check(&mut recovered, 999),
        None,
        "uncommitted insert vanished"
    );
    assert_eq!(check(&mut recovered, 3), Some(100), "untouched rows intact");
}

#[test]
fn torn_log_tail_recovers_the_committed_prefix() {
    let mut db = Database::in_memory();
    db.attach_wal(Wal::in_memory());
    schema_ddl(&mut db);
    db.insert(
        "account",
        vec![Value::Int(1), Value::text("safe"), Value::Int(10)],
    )
    .unwrap();
    // Snapshot the log bytes now (the "disk" at crash time), then keep
    // writing.
    let cut = db.wal().unwrap().raw().unwrap().len();
    db.insert(
        "account",
        vec![Value::Int(2), Value::text("late"), Value::Int(20)],
    )
    .unwrap();
    let full = db.take_wal().unwrap();
    let torn = &full.raw().unwrap()[..cut + 7]; // mid-record tear

    let records: Vec<_> = Wal::parse(torn)
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    let mut recovered = Database::in_memory();
    schema_ddl(&mut recovered);
    // Logical replay of the surviving committed prefix.
    let report = wow::storage::recovery::analyze(&records);
    assert!(!report.committed.is_empty());
    let mut applied = 0;
    for rec in &records {
        if let wow::storage::wal::LogRecord::Insert { bytes, .. } = rec {
            if report.committed.contains(&rec.txn()) {
                let tuple = wow::rel::tuple::Tuple::decode(bytes).unwrap();
                recovered.insert("account", tuple.values).unwrap();
                applied += 1;
            }
        }
    }
    assert_eq!(
        applied, 1,
        "only the fully-flushed insert survives the tear"
    );
}

#[test]
fn file_backed_store_round_trips_pages() {
    // The FileStore path: build a database on disk, flush, reopen the
    // store, and verify pages persist (catalog is rebuilt by the app).
    let dir = std::env::temp_dir().join(format!("wow-recovery-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("world.db");
    let _ = std::fs::remove_file(&path);
    let meta;
    {
        let mut db = Database::open_file(&path).unwrap();
        schema_ddl(&mut db);
        meta = db.catalog().table("account").unwrap().heap_meta;
        for i in 0..50 {
            db.insert(
                "account",
                vec![
                    Value::Int(i),
                    Value::text(format!("o{i}")),
                    Value::Int(i * 10),
                ],
            )
            .unwrap();
        }
        db.checkpoint().unwrap();
    }
    {
        // Reopen the raw pages and walk the heap directly.
        use wow::storage::buffer::BufferPool;
        use wow::storage::heap::HeapFile;
        use wow::storage::store::FileStore;
        let store = FileStore::open(&path).unwrap();
        let pool = BufferPool::new(store, 64);
        let heap = HeapFile::open(&pool, meta).unwrap();
        assert_eq!(heap.len(), 50);
        let rows = heap.scan_all(&pool).unwrap();
        let t = wow::rel::tuple::Tuple::decode(&rows[0].1).unwrap();
        assert_eq!(t.values[0], Value::Int(0));
    }
    std::fs::remove_file(&path).unwrap();
}
