//! Observability integration: the system views (`__wow_*`) opened through
//! the standard window machinery, metrics tracking real commits, and the
//! span tracer staying deadlock-free when the lock-manager path records
//! into it from many threads.

use parking_lot::Mutex;
use std::sync::Arc;
use wow::core::config::WorldConfig;
use wow::core::error::WowError;
use wow::core::locks::LockMode;
use wow::core::world::World;
use wow::rel::value::Value;

fn emp_world() -> World {
    let mut w = World::new(WorldConfig::default());
    w.db_mut()
        .run("CREATE TABLE emp (name TEXT KEY, salary INT)")
        .unwrap();
    for (name, salary) in [("alice", 120), ("bob", 90), ("carol", 150)] {
        w.db_mut()
            .run(&format!(
                r#"APPEND TO emp (name = "{name}", salary = {salary})"#
            ))
            .unwrap();
    }
    w.define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)")
        .unwrap();
    w
}

/// The gauge value a metrics query reports right now, or None.
fn gauge(w: &mut World, metric: &str) -> Option<i64> {
    let rows = w
        .db_mut()
        .run(&format!(
            r#"RANGE OF m IS __sys_metrics RETRIEVE (m.value) WHERE m.metric = "{metric}""#
        ))
        .unwrap();
    rows.tuples.first().map(|t| match t.values[0] {
        Value::Int(v) => v,
        _ => panic!("metric values are INT"),
    })
}

#[test]
fn metrics_window_is_browsable_and_read_only() {
    let mut w = emp_world();
    let s = w.open_session();
    let win = w.open_window(s, "__wow_metrics", None).unwrap();
    // Browsable through the standard cursor: rows exist and paging works.
    assert!(w.current_row(win).unwrap().is_some());
    w.browse_next(win).unwrap();
    // Read-only is enforced by the normal mode machinery, not a special case
    // in the caller: entering edit or insert is refused.
    let state = w.window(win).unwrap();
    assert!(!state.is_updatable());
    assert_eq!(state.read_only_reasons, vec!["system tables are read-only"]);
    let (left, _) = state.status_line();
    assert!(left.contains("[read-only]"), "{left}");
    assert!(matches!(w.enter_edit(win), Err(WowError::ReadOnly { .. })));
    assert!(matches!(
        w.enter_insert(win),
        Err(WowError::ReadOnly { .. })
    ));
}

#[test]
fn commit_through_user_window_shows_up_on_metrics_refresh() {
    let mut w = emp_world();
    let s = w.open_session();
    let editor = w.open_window(s, "emps", None).unwrap();
    let metrics = w.open_window(s, "__wow_metrics", None).unwrap();
    let commits_before = gauge(&mut w, "world.commits").unwrap();

    // Commit a salary change through the user window.
    w.enter_edit(editor).unwrap();
    w.window_mut(editor).unwrap().form.set_text(1, "121");
    w.commit(editor).unwrap();

    // The open metrics window still shows its snapshot (system tables are
    // rewritten on sync, not pushed through propagation)...
    assert_eq!(gauge(&mut w, "world.commits"), Some(commits_before));
    // ...and the standard refresh brings the commit into view.
    w.refresh_window(metrics).unwrap();
    assert_eq!(gauge(&mut w, "world.commits"), Some(commits_before + 1));
    // The freshness indicator on the refreshed window reports the full path.
    let (left, _) = w.window(metrics).unwrap().status_line();
    assert!(left.contains("[full "), "{left}");
}

#[test]
fn windows_and_locks_views_reflect_live_state() {
    let mut w = emp_world();
    let s = w.open_session();
    let _user = w.open_window(s, "emps", None).unwrap();
    assert!(w.try_lock(s, "emp", LockMode::Shared));
    let win = w.open_window(s, "__wow_windows", None).unwrap();
    let views: Vec<String> = w
        .db_mut()
        .run("RANGE OF w IS __sys_windows RETRIEVE (w.view)")
        .unwrap()
        .tuples
        .iter()
        .map(|t| t.values[0].to_string())
        .collect();
    assert!(views.contains(&"emps".to_string()), "{views:?}");
    let locks = w
        .db_mut()
        .run("RANGE OF l IS __sys_locks RETRIEVE (l.relation, l.mode)")
        .unwrap();
    assert_eq!(locks.tuples.len(), 1);
    assert_eq!(locks.tuples[0].values[0].to_string(), "emp");
    assert_eq!(locks.tuples[0].values[1].to_string(), "S");
    let _ = win;
}

#[test]
fn tracer_ring_and_lock_manager_do_not_deadlock() {
    // The lock manager records a LockAcquire span on every grant/conflict;
    // recording takes the tracer's ring mutex. If that ever nested inside a
    // table-lock wait (or vice versa) this test would hang: half the
    // threads hammer the ring directly while the other half drive the lock
    // manager (and thus record through the same ring) behind a world mutex.
    wow::obs::tracer().set_enabled(true);
    let world = Arc::new(Mutex::new(emp_world()));
    let sessions: Vec<_> = {
        let mut w = world.lock();
        (0..4).map(|_| w.open_session()).collect()
    };
    let mut handles = Vec::new();
    for (i, s) in sessions.into_iter().enumerate() {
        let world = Arc::clone(&world);
        handles.push(std::thread::spawn(move || {
            for round in 0..200 {
                let mut w = world.lock();
                let mode = if (i + round) % 2 == 0 {
                    LockMode::Shared
                } else {
                    LockMode::Exclusive
                };
                let _ = w.try_lock(s, "emp", mode);
                w.release_locks(s);
            }
        }));
    }
    for i in 0..4 {
        handles.push(std::thread::spawn(move || {
            for round in 0..500 {
                let mut span = wow::obs::span(wow::obs::Op::QueryExec);
                span.arg((i * 1000 + round) as u64);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    wow::obs::tracer().set_enabled(false);
    // The ring absorbed writes from both paths.
    let spans = wow::obs::tracer().snapshot();
    assert!(
        spans.iter().any(|s| s.op == wow::obs::Op::LockAcquire),
        "lock-manager spans recorded"
    );
    assert!(
        spans.iter().any(|s| s.op == wow::obs::Op::QueryExec),
        "direct spans recorded"
    );
}
