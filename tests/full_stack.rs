//! Full-stack integration: a registrar's working day, exercising every
//! layer (storage → rel → views → forms → tui → core) in one scenario.

use wow::core::config::WorldConfig;
use wow::core::world::World;
use wow::rel::value::Value;
use wow::tui::event::parse_script;
use wow::tui::geom::{Rect, Size};
use wow::workload::university::{build_world, UniversityConfig};

fn office() -> World {
    build_world(
        WorldConfig {
            screen: Size::new(120, 36),
            ..WorldConfig::default()
        },
        &UniversityConfig {
            students: 300,
            courses: 30,
            enrollments: 1200,
            zipf_s: 1.0,
            seed: 1983,
        },
    )
}

#[test]
fn a_full_working_day() {
    let mut world = office();
    let clerk = world.open_session();
    let auditor = world.open_session();

    // The clerk opens the main student window; the auditor watches honors.
    let students = world
        .open_window(clerk, "students", Some(Rect::new(0, 0, 50, 14)))
        .unwrap();
    let honors = world
        .open_window(auditor, "honor_roll", Some(Rect::new(52, 0, 50, 12)))
        .unwrap();
    assert!(world.window(students).unwrap().is_updatable());
    assert!(world.window(honors).unwrap().is_updatable());

    // Browse far forward and back; the cursor must stay consistent.
    for _ in 0..10 {
        world.browse_next_page(students).unwrap();
    }
    let deep = world.current_row(students).unwrap().unwrap();
    for _ in 0..3 {
        world.browse_prev_page(students).unwrap();
    }
    for _ in 0..3 {
        world.browse_next_page(students).unwrap();
    }
    assert_eq!(
        world.current_row(students).unwrap().unwrap().values[0],
        deep.values[0],
        "page back + page forward returns to the same row"
    );

    // Query by form: seniors only.
    world.focus_window(students).unwrap();
    for k in parse_script("q<tab><tab>4<enter>") {
        world.handle_key(k).unwrap();
    }
    let mut seniors = 0;
    while let Some(row) = world.current_row(students).unwrap() {
        assert_eq!(row.values[2], Value::Int(4), "query restricted to year 4");
        seniors += 1;
        if !world.browse_next(students).unwrap() {
            break;
        }
    }
    assert!(
        seniors > 10,
        "the generator makes ~25% seniors, got {seniors}"
    );

    // Give the current senior a 4.0 through the window; the honor_roll
    // window (other session!) refreshes by propagation.
    let honor_count = |world: &mut World| -> i64 {
        let rows = world
            .db_mut()
            .run("RETRIEVE (n = COUNT(s.sid)) WHERE s.gpa >= 3.5")
            .unwrap();
        match rows.tuples[0].values[0] {
            Value::Int(n) => n,
            _ => panic!(),
        }
    };
    let honors_before = honor_count(&mut world);
    let target_sid = world.current_row(students).unwrap().unwrap().values[0].clone();
    world.enter_edit(students).unwrap();
    world.window_mut(students).unwrap().form.set_text(3, "4.0");
    world.commit(students).unwrap();
    // The student's gpa really changed in the base table.
    let rows = world
        .db_mut()
        .run(&format!("RETRIEVE (s.gpa) WHERE s.sid = {target_sid}"))
        .unwrap();
    assert_eq!(rows.tuples[0].values[0], Value::Float(4.0));
    let honors_after = honor_count(&mut world);
    assert!(
        honors_after >= honors_before,
        "honor roll can only have grown ({honors_before} -> {honors_after})"
    );
    assert!(world.stats.windows_refreshed >= 1);
    // The honors *window* reflects it too: its current page only holds
    // qualifying rows.
    for (_, row) in world.window(honors).unwrap().cursor.page_rows() {
        match row.values[2] {
            Value::Float(g) => assert!(g >= 3.5),
            ref other => panic!("unexpected gpa value {other:?}"),
        }
    }

    // The clerk inserts a new student, then undoes it.
    world.clear_query(students).unwrap();
    world.enter_insert(students).unwrap();
    {
        let form = &mut world.window_mut(students).unwrap().form;
        form.set_text(0, "9999");
        form.set_text(1, "Zed Zorander");
        form.set_text(2, "1");
        form.set_text(3, "2.5");
    }
    world.commit(students).unwrap();
    let found = world
        .db_mut()
        .run("RETRIEVE (s.sname) WHERE s.sid = 9999")
        .unwrap();
    assert_eq!(found.len(), 1);
    world.undo_last(clerk).unwrap();
    let found = world
        .db_mut()
        .run("RETRIEVE (s.sname) WHERE s.sid = 9999")
        .unwrap();
    assert!(found.is_empty(), "undo removed the insert");

    // Rendering the whole screen works and settles (no damage when idle).
    let first = world.render();
    assert!(!first.is_empty());
    assert!(world.render().is_empty());

    // Close everything; the screen empties.
    world.close_session(clerk).unwrap();
    world.close_session(auditor).unwrap();
    let blank = world.render_snapshot();
    assert!(blank.iter().all(|l| l.trim().is_empty()));
}

#[test]
fn read_only_join_window_browses_and_refreshes() {
    let mut world = office();
    let s = world.open_session();
    let transcript = world.open_window(s, "transcript", None).unwrap();
    let state = world.window(transcript).unwrap();
    assert!(!state.is_updatable());
    assert!(
        state
            .read_only_reasons
            .iter()
            .any(|r| r.contains("2 base relations")),
        "{:?}",
        state.read_only_reasons
    );
    // Join views open on a streamed cursor: one screenful of join output at
    // a time, so the total length is unknown up front — count by paging.
    assert!(
        world
            .window(transcript)
            .unwrap()
            .cursor
            .known_len()
            .is_none(),
        "streamed join windows do not materialize their extension"
    );
    let mut n = world.window(transcript).unwrap().cursor.page_rows().len();
    let mut hops = 0;
    while world.browse_next_page(transcript).unwrap() {
        n += world.window(transcript).unwrap().cursor.page_rows().len();
        hops += 1;
        if hops > 200 {
            panic!("pagination failed to terminate");
        }
    }
    assert!(n > 500, "transcript should join ~1200 enrollments, got {n}");
    // Edits are rejected with the reasons.
    let err = world.enter_edit(transcript).unwrap_err();
    assert!(err.to_string().contains("read-only"));
    // A write to `student` via another window refreshes the join window.
    let students = world.open_window(s, "students", None).unwrap();
    world.enter_edit(students).unwrap();
    world
        .window_mut(students)
        .unwrap()
        .form
        .set_text(1, "Renamed Person");
    world.commit(students).unwrap();
    assert!(world.stats.windows_refreshed >= 1);
}

#[test]
fn aggregate_window_tracks_commits() {
    let mut world = office();
    let s = world.open_session();
    let load = world.open_window(s, "dept_load", None).unwrap();
    let before: i64 = {
        let rows = world.window(load).unwrap().cursor.page_rows();
        rows.iter()
            .map(|(_, t)| match t.values[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum()
    };
    assert!(before > 0);
    // Delete an enrollment through a window on enroll... there is no such
    // view; use the db directly and refresh.
    let rows = world.db_mut().run("RETRIEVE (en.eid) LIMIT 1").unwrap();
    let eid = rows.tuples[0].values[0].clone();
    world
        .db_mut()
        .run(&format!("DELETE en WHERE en.eid = {eid}"))
        .unwrap();
    world.refresh_window(load).unwrap();
    let after: i64 = {
        let rows = world.window(load).unwrap().cursor.page_rows();
        rows.iter()
            .map(|(_, t)| match t.values[1] {
                Value::Int(n) => n,
                _ => 0,
            })
            .sum()
    };
    assert_eq!(
        after,
        before - 1,
        "one enrollment disappeared from the totals"
    );
}

#[test]
fn screen_contents_are_plausible() {
    let mut world = office();
    let s = world.open_session();
    world
        .open_window(s, "students", Some(Rect::new(0, 0, 60, 14)))
        .unwrap();
    let screen = world.render_snapshot().join("\n");
    assert!(screen.contains("+ students"));
    assert!(screen.contains("Sid:"));
    assert!(screen.contains("Sname:"));
    assert!(screen.contains("Gpa:"));
    assert!(screen.contains("Browse"));
    assert!(screen.contains("row 1"));

    // Entering edit mode changes the status line.
    for k in parse_script("e") {
        world.handle_key(k).unwrap();
    }
    let screen = world.render_snapshot().join("\n");
    assert!(screen.contains("Edit"), "{screen}");
}
