//! N-client equivalence: K TCP clerks replaying an interleaved script
//! must land every window in exactly the state a single-process `World`
//! reaches replaying the same ops in the same order — the network layer
//! may add latency, never semantics.
//!
//! Also here: the push consistency guarantees. Pushed `WindowRefreshed`
//! frames carry strictly increasing generations, and a pushed screenful is
//! always a pure post-commit state — a multi-row `REPLACE` that rewrites
//! every salary to one value must never push a screen showing two
//! different values (that would mean the push was built mid-commit).

use std::time::Duration;
use wow::core::config::WorldConfig;
use wow::core::world::World;
use wow::net::{screenful_of, Client, Push, Server, ServerConfig};
use wow::workload::netload::apply_remote;
use wow::workload::script::{self, WindowOp};
use wow::workload::suppliers::{build_world, SuppliersConfig};
use wow::workload::DetRng;
use wow_core::{WinId, WowError};

const SUPPLIERS: SuppliersConfig = SuppliersConfig {
    suppliers: 12,
    parts: 12,
    shipments: 60,
    seed: 9,
};

/// The interleaved multi-clerk script: per-clerk deterministic op streams
/// consumed round-robin, so the server (serialized by its world lock) and
/// the local replay see the identical total order.
fn clerk_scripts(k: usize, len: usize) -> Vec<Vec<WindowOp>> {
    (0..k)
        .map(|c| {
            let mut rng = DetRng::new(100 + c as u64);
            // qty (field 3 on the shipments view) is writable and numeric.
            script::mixed_script(&mut rng, len, 0.25, 3)
        })
        .collect()
}

#[test]
fn k_clients_equal_single_process_replay() {
    let k = 3;
    let len = 40;
    let scripts = clerk_scripts(k, len);

    // Remote: K connections, ops driven round-robin.
    let server = Server::start(
        build_world(WorldConfig::default(), &SUPPLIERS),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let mut clients: Vec<(Client, u32)> = (0..k)
        .map(|_| {
            let mut c = Client::connect(addr).unwrap();
            let (win, _, _) = c.open_window("shipments", false).unwrap();
            (c, win)
        })
        .collect();
    let mut remote_denials = 0u64;
    // Round-robin interleaving: op index outer, clerk inner, so every clerk's
    // i-th op lands before anyone's (i+1)-th. The index drives the total order.
    #[allow(clippy::needless_range_loop)]
    for i in 0..len {
        for (c, (client, win)) in clients.iter_mut().enumerate() {
            match apply_remote(client, *win, &scripts[c][i]) {
                Ok(()) => {}
                Err(WowError::LockConflict { .. } | WowError::Deadlock { .. }) => {
                    remote_denials += 1
                }
                Err(other) => panic!("remote clerk {c} op {i} failed: {other}"),
            }
        }
    }
    let remote_screens: Vec<String> = clients
        .iter_mut()
        .map(|(c, win)| c.screen(*win).unwrap().to_string())
        .collect();
    for (c, _) in clients {
        c.goodbye().unwrap();
    }
    let remote_world = server.shutdown();

    // Local: K sessions in one world, same ops, same order.
    let mut world = build_world(WorldConfig::default(), &SUPPLIERS);
    let wins: Vec<WinId> = (0..k)
        .map(|_| {
            let s = world.open_session();
            world.open_window(s, "shipments", None).unwrap()
        })
        .collect();
    let mut local_denials = 0u64;
    // Same round-robin total order as the remote replay above.
    #[allow(clippy::needless_range_loop)]
    for i in 0..len {
        for c in 0..k {
            match script::apply(&mut world, wins[c], &scripts[c][i]) {
                Ok(()) => {}
                Err(WowError::LockConflict { .. } | WowError::Deadlock { .. }) => {
                    local_denials += 1
                }
                Err(other) => panic!("local clerk {c} op {i} failed: {other}"),
            }
        }
    }

    assert_eq!(
        remote_denials, local_denials,
        "lock denial pattern must match under identical interleaving"
    );
    for (c, win) in wins.iter().enumerate() {
        let local = screenful_of(&world, *win).unwrap().to_string();
        assert_eq!(
            remote_screens[c], local,
            "clerk {c}: remote screen diverged from the embedded replay"
        );
    }
    // The databases agree too, not just the screens.
    let dump = |w: &mut World| -> String {
        let rows = w
            .db_mut()
            .run("RANGE OF s IS shipment RETRIEVE (s.spid, s.sno, s.pno, s.qty) SORT BY s.spid")
            .unwrap();
        rows.tuples
            .iter()
            .map(|t| {
                t.values
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let mut remote_world = remote_world;
    assert_eq!(dump(&mut remote_world), dump(&mut world));
}

#[test]
fn pushed_screenfuls_are_never_mixed() {
    let mut world = World::new(WorldConfig::default());
    world
        .db_mut()
        .run("CREATE TABLE emp (name TEXT KEY, salary INT)")
        .unwrap();
    for i in 0..6 {
        world
            .db_mut()
            .run(&format!(r#"APPEND TO emp (name = "e{i}", salary = 0)"#))
            .unwrap();
    }
    world
        .define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)")
        .unwrap();
    let server = Server::start(world, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut watcher = Client::connect(addr).unwrap();
    let (win, _, first) = watcher.open_window("emps", false).unwrap();
    assert_eq!(first.rows.len(), 6);

    // Writer rewrites EVERY row's salary to k in one statement, k rising.
    // Any pushed screen mixing two salaries would prove a push was built
    // from a half-applied commit.
    let writer = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        for k in 1..=15 {
            c.quel(&format!("RANGE OF e IS emp REPLACE e (salary = {k})"))
                .unwrap();
        }
        c.goodbye().unwrap();
    });

    let mut last_gen = 1u64; // open was generation 1
    let mut last_salary = 0i64;
    let mut pushes = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        match watcher.wait_push(Duration::from_millis(100)).unwrap() {
            Some(Push::WindowRefreshed {
                win: pwin,
                generation,
                screen,
                ..
            }) => {
                assert_eq!(pwin, win);
                assert!(
                    generation > last_gen,
                    "generation regressed: {generation} after {last_gen}"
                );
                last_gen = generation;
                pushes += 1;
                let salaries: Vec<String> = screen.rows.iter().map(|r| r[1].to_string()).collect();
                assert!(
                    salaries.windows(2).all(|w| w[0] == w[1]),
                    "mixed pre-/post-commit screenful pushed: {salaries:?}"
                );
                let k: i64 = salaries[0].parse().unwrap();
                assert!(
                    k >= last_salary,
                    "salary went backwards: {k} after {last_salary}"
                );
                last_salary = k;
                if k == 15 {
                    break;
                }
            }
            None => {
                if last_salary == 15 {
                    break;
                }
            }
        }
    }
    writer.join().unwrap();
    assert!(pushes > 0, "the watcher must have received pushes");
    assert_eq!(
        last_salary, 15,
        "the final commit's screenful must be delivered (latest-wins coalescing)"
    );
    server.shutdown();
}

/// Coalescing under a deliberately slow consumer: the watcher never reads
/// while 15 commits land, then drains — it must see few pushes, ending in
/// the final state, with generations still increasing.
#[test]
fn slow_consumer_coalesces_to_latest() {
    let mut world = World::new(WorldConfig::default());
    world
        .db_mut()
        .run("CREATE TABLE emp (name TEXT KEY, salary INT)")
        .unwrap();
    world
        .db_mut()
        .run(r#"APPEND TO emp (name = "solo", salary = 0)"#)
        .unwrap();
    world
        .define_view("emps", "RANGE OF e IS emp RETRIEVE (e.name, e.salary)")
        .unwrap();
    let server = Server::start(world, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut watcher = Client::connect(addr).unwrap();
    let (_win, _, _) = watcher.open_window("emps", false).unwrap();

    // All commits happen while the watcher is not reading its socket.
    let mut writer = Client::connect(addr).unwrap();
    let (wwin, _, _) = writer.open_window("emps", false).unwrap();
    for k in 1..=15 {
        writer.enter_edit(wwin).unwrap();
        writer.set_field(wwin, 1, &k.to_string()).unwrap();
        writer.commit(wwin).unwrap();
    }
    writer.goodbye().unwrap();

    // Now drain. The outbox held at most a handful of frames; the last
    // one must carry the final value.
    let mut final_salary = String::new();
    let mut last_gen = 1u64;
    while let Some(Push::WindowRefreshed {
        generation, screen, ..
    }) = watcher.wait_push(Duration::from_millis(300)).unwrap()
    {
        assert!(generation > last_gen);
        last_gen = generation;
        final_salary = screen.rows[0][1].to_string();
    }
    assert_eq!(
        final_salary, "15",
        "the newest screenful must survive coalescing"
    );
    watcher.goodbye().unwrap();
    server.shutdown();
}
