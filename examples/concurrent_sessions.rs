//! Two clerks, one database: lock conflicts, deadlock detection, and
//! cross-window propagation.
//!
//! The same scenario runs over TCP in `examples/remote_clerks.rs`, where
//! each clerk is a separate `wow-net` connection and the propagation at
//! the end arrives as a pushed `WindowRefreshed` frame instead of an
//! in-process refresh.
//!
//! ```text
//! cargo run --example concurrent_sessions
//! ```

use wow::core::config::WorldConfig;
use wow::core::locks::LockMode;
use wow::core::world::World;

fn main() {
    let mut world = World::new(WorldConfig::default());
    world
        .db_mut()
        .run(
            r#"
            CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)
            CREATE TABLE dept (dname TEXT KEY, floor INT)
            APPEND TO emp (name = "alice", dept = "toy", salary = 120)
            APPEND TO emp (name = "bob", dept = "shoe", salary = 90)
            APPEND TO dept (dname = "toy", floor = 1)
            APPEND TO dept (dname = "shoe", floor = 2)
            "#,
        )
        .unwrap();
    world
        .define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .unwrap();
    world
        .define_view("depts", "RANGE OF d IS dept RETRIEVE (d.dname, d.floor)")
        .unwrap();

    let clerk_a = world.open_session();
    let clerk_b = world.open_session();
    let win_a = world.open_window(clerk_a, "emps", None).unwrap();
    let win_b = world.open_window(clerk_b, "emps", None).unwrap();

    // --- Lock conflict -----------------------------------------------------
    println!("== lock conflict ==");
    assert!(world.try_lock(clerk_a, "emp", LockMode::Exclusive));
    println!("clerk A holds X(emp)");
    let granted = world.try_lock(clerk_b, "emp", LockMode::Exclusive);
    println!("clerk B requests X(emp): granted = {granted} (denied, retry later)");
    world.release_locks(clerk_a);
    let granted = world.try_lock(clerk_b, "emp", LockMode::Exclusive);
    println!("after A releases: granted = {granted}");
    world.release_locks(clerk_b);

    // --- Deadlock detection --------------------------------------------------
    println!("\n== deadlock detection ==");
    assert!(world.try_lock(clerk_a, "emp", LockMode::Exclusive));
    assert!(world.try_lock(clerk_b, "dept", LockMode::Exclusive));
    let a_wants_dept = world.try_lock(clerk_a, "dept", LockMode::Exclusive);
    println!("A holds emp, B holds dept; A requests dept: granted = {a_wants_dept}");
    let b_wants_emp = world.try_lock(clerk_b, "emp", LockMode::Exclusive);
    println!("B requests emp: granted = {b_wants_emp} — the cycle was detected");
    println!("deadlocks detected so far: {}", world.locks().deadlocks);
    world.release_locks(clerk_a);
    world.release_locks(clerk_b);

    // --- Propagation -----------------------------------------------------------
    println!("\n== propagation between clerks ==");
    println!(
        "clerk B sees: {}",
        world.current_row(win_b).unwrap().unwrap()
    );
    world.enter_edit(win_a).unwrap();
    world.window_mut(win_a).unwrap().form.set_text(2, "200");
    world.commit(win_a).unwrap();
    println!("clerk A committed salary = 200 in their window");
    println!(
        "clerk B now sees: {} (no manual refresh)",
        world.current_row(win_b).unwrap().unwrap()
    );
    println!(
        "windows refreshed by propagation: {}",
        world.stats.windows_refreshed
    );
}
