//! Quickstart: the whole system in sixty lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Creates a database, defines a view, opens a window on it, browses,
//! edits a row through the window, and shows the screen after each step.

use wow::core::config::WorldConfig;
use wow::core::world::World;

fn show(world: &mut World, caption: &str) {
    println!("--- {caption} ---");
    for line in world.render_snapshot() {
        let trimmed = line.trim_end();
        if !trimmed.is_empty() {
            println!("{trimmed}");
        }
    }
    println!();
}

fn main() {
    // 1. The "world": one shared database.
    let mut world = World::new(WorldConfig::default());
    world
        .db_mut()
        .run(
            r#"
            CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)
            RANGE OF e IS emp
            APPEND TO emp (name = "alice", dept = "toy",  salary = 120)
            APPEND TO emp (name = "bob",   dept = "shoe", salary = 90)
            APPEND TO emp (name = "carol", dept = "toy",  salary = 150)
            "#,
        )
        .expect("schema and rows");

    // 2. A view: what the window will look through.
    world
        .define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .expect("view");

    // 3. A session and a window. The form is compiled from the view schema.
    let session = world.open_session();
    let win = world.open_window(session, "emps", None).expect("window");
    show(&mut world, "window opened: browsing row 1");

    // 4. Browse.
    world.browse_next(win).unwrap();
    show(&mut world, "after Down: row 2 (bob)");

    // 5. Edit through the window: raise bob's salary.
    world.enter_edit(win).unwrap();
    world.window_mut(win).unwrap().form.set_text(2, "95");
    world.commit(win).unwrap();
    show(&mut world, "after edit commit: bob earns 95");

    // 6. The base table saw the write.
    let rows = world
        .db_mut()
        .run(r#"RETRIEVE (e.name, e.salary) WHERE e.name = "bob""#)
        .unwrap();
    println!("base table says: {}", rows.tuples[0]);
}
