//! The registrar's office: several windows over overlapping student data.
//!
//! ```text
//! cargo run --example registrar            # scripted demo, prints frames
//! cargo run --example registrar -- --tty   # render live ANSI to stdout
//! ```
//!
//! Demonstrates the paper's core scenario: a clerk browses `students`, a
//! second window watches the `honor_roll` view, and an edit committed in
//! the first window propagates into the second automatically.

use wow::core::config::WorldConfig;
use wow::core::WindowStyle;
use wow::tui::backend::{AnsiBackend, Backend};
use wow::tui::geom::{Rect, Size};
use wow::workload::university::{build_world, UniversityConfig};

fn main() {
    let tty = std::env::args().any(|a| a == "--tty");
    let mut world = build_world(
        WorldConfig {
            screen: Size::new(100, 30),
            ..WorldConfig::default()
        },
        &UniversityConfig {
            students: 200,
            courses: 20,
            enrollments: 800,
            zipf_s: 1.0,
            seed: 1983,
        },
    );
    let clerk = world.open_session();
    let students = world
        .open_window(clerk, "students", Some(Rect::new(1, 1, 48, 12)))
        .unwrap();
    let honor = world
        .open_window(clerk, "honor_roll", Some(Rect::new(51, 1, 46, 10)))
        .unwrap();
    // A grid window: a whole page of courses at once.
    let _courses = world
        .open_window_styled(
            clerk,
            "courses",
            Some(Rect::new(51, 12, 46, 14)),
            WindowStyle::Grid,
        )
        .unwrap();
    world.focus_window(students).unwrap();

    let mut ansi = AnsiBackend::new(std::io::stdout());
    fn frame(
        world: &mut wow::core::world::World,
        ansi: &mut AnsiBackend<std::io::Stdout>,
        tty: bool,
        caption: &str,
    ) {
        if tty {
            let patches = world.render();
            ansi.present(&patches);
            ansi.flush();
            std::thread::sleep(std::time::Duration::from_millis(600));
        } else {
            println!("--- {caption} ---");
            for line in world.render_snapshot() {
                let t = line.trim_end();
                if !t.is_empty() {
                    println!("{t}");
                }
            }
            println!();
        }
    }
    if tty {
        ansi.enter().unwrap();
    }

    frame(
        &mut world,
        &mut ansi,
        tty,
        "two windows: all students + honor roll",
    );

    // Browse a few pages.
    for _ in 0..2 {
        world.browse_next_page(students).unwrap();
    }
    frame(
        &mut world,
        &mut ansi,
        tty,
        "clerk paged forward twice (index cursor)",
    );

    // Query-by-form: seniors named with a leading 'A'-ish pattern.
    world.enter_query(students).unwrap();
    {
        let form = &mut world.window_mut(students).unwrap().form;
        form.set_text(2, "4"); // year = 4
    }
    world.apply_query(students).unwrap();
    frame(
        &mut world,
        &mut ansi,
        tty,
        "query by form: year = 4 (seniors)",
    );

    // Raise the current senior's GPA to honor-roll territory; the
    // honor_roll window refreshes by propagation.
    if world.current_row(students).unwrap().is_some() {
        world.enter_edit(students).unwrap();
        world.window_mut(students).unwrap().form.set_text(3, "3.9");
        world.commit(students).unwrap();
    }
    frame(
        &mut world,
        &mut ansi,
        tty,
        "edit committed: gpa=3.9 — honor_roll window refreshed itself",
    );
    println!(
        "windows refreshed by propagation: {}",
        world.stats.windows_refreshed
    );
    let _ = honor;

    if tty {
        ansi.leave().unwrap();
    }
}
