//! The `concurrent_sessions` scenario, but over TCP: two clerks at
//! separate connections share one database through a `wow-net` server,
//! and clerk B's screen updates by **server push** when clerk A commits.
//!
//! Where `examples/concurrent_sessions.rs` drives both clerks through one
//! embedded `World` (same process, direct calls), this example puts the
//! world behind a socket: same views, same edit, same propagation — the
//! only difference is the wire. Read the two side by side.
//!
//! ```text
//! cargo run --example remote_clerks
//! ```

use std::time::Duration;
use wow::core::config::WorldConfig;
use wow::core::world::World;
use wow::net::{Client, Push, Server, ServerConfig};

fn main() {
    let mut world = World::new(WorldConfig::default());
    world
        .db_mut()
        .run(
            r#"
            CREATE TABLE emp (name TEXT KEY, dept TEXT, salary INT)
            APPEND TO emp (name = "alice", dept = "toy", salary = 120)
            APPEND TO emp (name = "bob", dept = "shoe", salary = 90)
            "#,
        )
        .unwrap();
    world
        .define_view(
            "emps",
            "RANGE OF e IS emp RETRIEVE (e.name, e.dept, e.salary)",
        )
        .unwrap();

    // Serve the world on an ephemeral local port.
    let server = Server::start(world, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    println!("window server listening on {addr}");

    // Two clerks connect; each handshake opens a server-side session.
    let mut clerk_a = Client::connect(addr).unwrap();
    let mut clerk_b = Client::connect(addr).unwrap();
    println!(
        "clerk A is session {}, clerk B is session {}",
        clerk_a.session(),
        clerk_b.session()
    );

    let (win_a, updatable, _) = clerk_a.open_window("emps", false).unwrap();
    assert!(updatable);
    let (win_b, _, screen_b) = clerk_b.open_window("emps", false).unwrap();

    println!("\n== before the edit ==");
    println!("clerk B sees:\n{screen_b}");

    // Clerk A raises alice's salary through their own window.
    clerk_a.enter_edit(win_a).unwrap();
    clerk_a.set_field(win_a, 2, "200").unwrap();
    clerk_a.commit(win_a).unwrap();
    println!("\nclerk A committed salary = 200 in their window");

    // Clerk B did nothing — the server pushes the refreshed screenful.
    let push = clerk_b
        .wait_push(Duration::from_secs(2))
        .unwrap()
        .expect("the commit must push a refresh to clerk B");
    let Push::WindowRefreshed {
        win,
        kind,
        generation,
        screen,
    } = push;
    assert_eq!(win, win_b);
    println!("\n== after the push ==");
    println!("clerk B received a {kind:?} refresh (generation {generation}):\n{screen}");

    // The server's own state is visible through a system view.
    let (sys_win, _, conns) = clerk_a.open_window("__wow_connections", false).unwrap();
    println!("\n== __wow_connections ==");
    println!("{conns}");
    clerk_a.close_window(sys_win).unwrap();

    clerk_a.goodbye().unwrap();
    clerk_b.goodbye().unwrap();
    let world = server.shutdown();
    println!(
        "\nserver drained; world returned with {} committed write(s)",
        world.stats.commits
    );
}
