//! Inventory control over the suppliers-parts world: QUEL, query plans,
//! join views, aggregate views, and query-by-form — the whole stack from
//! the language down.
//!
//! ```text
//! cargo run --example inventory
//! ```

use wow::core::config::WorldConfig;
use wow::forms::compiler::compile_form_all_writable;
use wow::forms::qbf::form_predicate;
use wow::views::expand::{run_view_query, view_schema, ViewQuery};
use wow::views::ViewCatalog;
use wow::workload::suppliers::{build_world, SuppliersConfig};

fn main() {
    let mut world = build_world(
        WorldConfig::default(),
        &SuppliersConfig {
            suppliers: 50,
            parts: 40,
            shipments: 400,
            seed: 7,
        },
    );

    // 1. Plain QUEL against the base tables.
    println!("== QUEL: the five biggest shipments ==");
    let rows = world
        .db_mut()
        .run("RETRIEVE (sp.sno, sp.pno, sp.qty) SORT BY sp.qty DESC LIMIT 5")
        .unwrap();
    print!("{}", rows.to_table_string());

    // 2. EXPLAIN shows the optimizer's choices.
    println!("== EXPLAIN: equality on an indexed column uses the hash index ==");
    let plan = world
        .db_mut()
        .run("EXPLAIN RETRIEVE (sp.qty) WHERE sp.sno = 3")
        .unwrap();
    for t in &plan.tuples {
        println!("{}", t.values[0]);
    }
    println!();

    println!("== EXPLAIN: a join picks a hash join on the equi edge ==");
    let plan = world
        .db_mut()
        .run("EXPLAIN RETRIEVE (s.sname, sp.qty) WHERE s.sno = sp.sno AND sp.qty > 900")
        .unwrap();
    for t in &plan.tuples {
        println!("{}", t.values[0]);
    }
    println!();

    // 3. A join view, queried through expansion.
    let vc: ViewCatalog = {
        let mut vc = ViewCatalog::new();
        for name in world.views().names() {
            vc.register(world.views().get(&name).unwrap().clone())
                .unwrap();
        }
        vc
    };
    println!("== join view shipment_detail (expanded, not materialized) ==");
    let q = ViewQuery {
        sort: vec![wow::rel::quel::ast::SortKey {
            column: "qty".into(),
            ascending: false,
        }],
        limit: Some((0, 5)),
        ..Default::default()
    };
    let rows = run_view_query(world.db_mut(), &vc, "shipment_detail", &q).unwrap();
    print!("{}", rows.to_table_string());

    // 4. An aggregate view.
    println!("== aggregate view supplier_volume ==");
    let q = ViewQuery {
        sort: vec![wow::rel::quel::ast::SortKey {
            column: "total".into(),
            ascending: false,
        }],
        limit: Some((0, 5)),
        ..Default::default()
    };
    let rows = run_view_query(world.db_mut(), &vc, "supplier_volume", &q).unwrap();
    print!("{}", rows.to_table_string());

    // 5. Query-by-form: what a user types becomes a predicate.
    println!("== query by form: city=london, status>20 ==");
    let schema = view_schema(world.db(), world.views(), "suppliers").unwrap();
    let spec = compile_form_all_writable("suppliers", "Suppliers", &schema);
    let entries = vec![
        String::new(),
        String::new(),
        "london".to_string(),
        ">20".to_string(),
    ];
    let pred = form_predicate(&spec, &entries).unwrap().unwrap();
    println!("synthesized predicate: {pred}");
    let q = ViewQuery {
        pred: Some(pred),
        ..Default::default()
    };
    let rows = run_view_query(world.db_mut(), &vc, "suppliers", &q).unwrap();
    println!("{} suppliers match", rows.len());

    // 6. And the same thing through an actual window.
    let s = world.open_session();
    let win = world.open_window(s, "suppliers", None).unwrap();
    world.enter_query(win).unwrap();
    {
        let form = &mut world.window_mut(win).unwrap().form;
        form.set_text(2, "london");
        form.set_text(3, ">20");
    }
    world.apply_query(win).unwrap();
    let mut shown = 0;
    println!("\n== browsing the restricted window ==");
    while let Some(row) = world.current_row(win).unwrap() {
        println!("  {row}");
        shown += 1;
        if shown >= 5 || !world.browse_next(win).unwrap() {
            break;
        }
    }
    println!("(showing {shown} of {})", rows.len());
}
